#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "obs/process.hpp"
#include "obs/registry.hpp"
#include "rng/rng.hpp"
#include "util/failpoint.hpp"

namespace smn::exp {
namespace {

std::uint64_t fnv1a(const std::string& text, std::uint64_t hash) noexcept {
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

/// Executes every (point, replication) unit of `points` through one
/// ReplicationPool pass and aggregates per point in index order. The
/// shared implementation of run_point and run_sweep: both produce records
/// through the exact same aggregation walk, so a pipelined sweep is
/// byte-identical to running its points one at a time.
std::vector<PointResult> run_points(const Scenario& scenario,
                                    const std::vector<ParamValues>& points,
                                    const RunOptions& options) {
    if (options.reps < 1) throw std::invalid_argument("run_point: reps must be >= 1");
    const auto reps = static_cast<std::size_t>(options.reps);

    // Bind every point before any replication runs, so a typo'd parameter
    // fails fast instead of after the first points' worth of compute.
    std::vector<ScenarioParams> bound;
    std::vector<std::uint64_t> seeds;
    bound.reserve(points.size());
    seeds.reserve(points.size());
    for (const auto& values : points) {
        bound.emplace_back(scenario.params, values);
        seeds.push_back(point_seed(options.seed, scenario.name, values));
    }

    // One flat unit queue over the whole sweep: unit u is replication
    // u % reps of point u / reps. Dynamic scheduling means a small
    // point's units never wait for a slow neighbour point to finish;
    // per-unit result slots keep the outcome independent of who ran what.
    const std::size_t total = points.size() * reps;
    std::vector<Metrics> unit_metrics(total);
    std::vector<double> unit_seconds(total);
    std::atomic<std::size_t> done{0};
    const int threads = options.threads > 0 ? options.threads : sim::default_threads();

    using clock = std::chrono::steady_clock;

    // Resume: units the journal already holds are replayed on the caller
    // thread (the journal shares the JSONL writer's shortest-round-trip
    // number encoding, so a replayed metric re-serializes to the exact
    // bytes the uninterrupted run would have produced).
    std::vector<std::uint8_t> replayed(total, 0);
    if (options.journal != nullptr) {
        for (std::size_t u = 0; u < total; ++u) {
            const auto* prior = options.journal->find(scenario.name, static_cast<int>(u));
            if (prior == nullptr) continue;
            unit_metrics[u] = prior->metrics;
            unit_seconds[u] = prior->wall_seconds;
            replayed[u] = 1;
            if (options.on_progress) {
                options.on_progress(done.fetch_add(1, std::memory_order_relaxed) + 1, total);
            }
        }
    }

    std::atomic<std::size_t> skipped{0};
    const auto pool_before = sim::ReplicationPool::instance().stats();
    const auto sweep_begin = clock::now();
    std::vector<sim::UnitFailure> failed_units;
    if (options.dispatch) {
        // External backend: it owns scheduling and recovery; this side
        // only supplies the unit bodies and absorbs completions into the
        // same slots/journal the local paths use.
        DispatchContext ctx;
        ctx.total_units = static_cast<int>(total);
        for (std::size_t u = 0; u < total; ++u) {
            if (replayed[u] == 0) ctx.units.push_back(static_cast<int>(u));
        }
        ctx.unit_seed = [&](int unit) {
            const auto u = static_cast<std::size_t>(unit);
            return rng::replication_seed(seeds[u / reps], u % reps);
        };
        ctx.compute = [&](int unit, double& wall_seconds) {
            const auto u = static_cast<std::size_t>(unit);
            util::failpoint("unit_body");
            const auto begin = clock::now();
            Metrics metrics = scenario.run_rep(
                bound[u / reps], rng::replication_seed(seeds[u / reps], u % reps));
            wall_seconds = std::chrono::duration<double>(clock::now() - begin).count();
            return metrics;
        };
        ctx.deliver = [&](int unit, const Metrics& metrics, double wall_seconds) {
            const auto u = static_cast<std::size_t>(unit);
            unit_metrics[u] = metrics;
            unit_seconds[u] = wall_seconds;
            if (options.journal != nullptr) {
                io::JournalUnit entry;
                entry.metrics = metrics;
                entry.wall_seconds = wall_seconds;
                options.journal->record(scenario.name, unit, entry);
            }
            if (options.on_progress) {
                options.on_progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                                    total);
            }
        };
        auto report = options.dispatch(ctx);
        failed_units = std::move(report.failures);
        skipped.store(report.skipped, std::memory_order_relaxed);
    } else {
        failed_units = sim::ReplicationPool::instance().run_units_tolerant(
            static_cast<int>(total), threads, options.retries, [&](int unit) {
                const auto u = static_cast<std::size_t>(unit);
                if (replayed[u] != 0) return;
                if (options.stop != nullptr &&
                    options.stop->load(std::memory_order_relaxed)) {
                    skipped.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                const auto point = u / reps;
                const auto rep = u % reps;
                util::failpoint("unit_body");
                const auto begin = clock::now();
                unit_metrics[u] = scenario.run_rep(
                    bound[point], rng::replication_seed(seeds[point], rep));
                unit_seconds[u] =
                    std::chrono::duration<double>(clock::now() - begin).count();
                if (options.journal != nullptr) {
                    io::JournalUnit entry;
                    entry.metrics = unit_metrics[u];
                    entry.wall_seconds = unit_seconds[u];
                    options.journal->record(scenario.name, unit, entry);
                }
                if (options.on_progress) {
                    options.on_progress(
                        done.fetch_add(1, std::memory_order_relaxed) + 1, total);
                }
            });
    }
    if (skipped.load(std::memory_order_relaxed) > 0) {
        if (options.journal != nullptr) options.journal->sync();
        throw Interrupted("run interrupted with " +
                          std::to_string(skipped.load(std::memory_order_relaxed)) + " of " +
                          std::to_string(total) + " units not run");
    }
    if (!failed_units.empty() && !options.tolerate_failures) {
        // Fail-fast mode: surface the first failure (by unit index, so
        // the choice is deterministic) with its original type.
        std::rethrow_exception(failed_units.front().error);
    }
    const double sweep_wall =
        std::chrono::duration<double>(clock::now() - sweep_begin).count();
    const auto pool_after = sim::ReplicationPool::instance().stats();
    // Pass-level pool/process telemetry: units interleave across a
    // pipelined sweep's points, so these figures describe the pass as a
    // whole and are attached identically to each of its points (like
    // sweep_wall_seconds).
    const double pool_units = static_cast<double>((pool_after.units_pooled +
                                                   pool_after.units_inline) -
                                                  (pool_before.units_pooled +
                                                   pool_before.units_inline));
    const double pool_units_inline =
        static_cast<double>(pool_after.units_inline - pool_before.units_inline);
    const double pool_busy =
        pool_after.worker_busy_seconds - pool_before.worker_busy_seconds;
    const double peak_rss = static_cast<double>(obs::peak_rss_bytes());
#if SMN_OBS_ENABLED
    obs::Registry::instance().counter("pool.units").add(
        static_cast<std::int64_t>(pool_units));
    obs::Registry::instance().counter("pool.runs").add(pool_after.runs - pool_before.runs);
    obs::Registry::instance().gauge("process.peak_rss_bytes").set_max(
        obs::peak_rss_bytes());
#endif

    std::vector<PointResult> results;
    results.reserve(points.size());
    std::size_t next_failure = 0;  // failed_units is sorted by unit index
    for (std::size_t point = 0; point < points.size(); ++point) {
        PointResult result;
        result.scenario = scenario.name;
        result.params = points[point];
        result.reps = options.reps;
        result.seed = seeds[point];
        result.sweep_wall_seconds = sweep_wall;
        while (next_failure < failed_units.size() &&
               static_cast<std::size_t>(failed_units[next_failure].unit) < (point + 1) * reps) {
            const auto& failure = failed_units[next_failure++];
            result.failures.push_back({static_cast<int>(
                                           static_cast<std::size_t>(failure.unit) % reps),
                                       failure.attempts, failure.message});
        }
        for (std::size_t rep = 0; rep < reps; ++rep) {
            const auto u = point * reps + rep;
            result.wall_seconds += unit_seconds[u];
            for (const auto& [name, value] : unit_metrics[u]) {
                if (name.starts_with("timing.")) {
                    // Reserved prefix: host-dependent phase seconds — keep
                    // out of the deterministic metric block (see
                    // PointResult).
                    result.phase_seconds[name.substr(7)] += value;
                    continue;
                }
                if (name.starts_with("obs.")) {
                    // Reserved prefix: telemetry counters — build- and
                    // host-dependent, diverted like timing.* (see
                    // PointResult::counters).
                    result.counters[name.substr(4)] += value;
                    continue;
                }
                result.metrics[name].add(value);
                if (name == "steps") result.steps += value;
            }
        }
        result.steps_per_second =
            result.wall_seconds > 0.0 ? result.steps / result.wall_seconds : 0.0;
        if (!result.counters.empty()) {
            result.counters["pool.units"] = pool_units;
            result.counters["pool.units_inline"] = pool_units_inline;
            result.counters["pool.workers"] = static_cast<double>(pool_after.workers);
            result.counters["pool.worker_busy_s"] = pool_busy;
            result.counters["process.peak_rss_bytes"] = peak_rss;
            const auto agents = result.counters.find("agents");
            if (agents != result.counters.end() && agents->second > 0.0) {
                result.counters["process.rss_bytes_per_agent"] =
                    peak_rss / (agents->second / static_cast<double>(reps));
            }
        }
        results.push_back(std::move(result));
    }
    return results;
}

}  // namespace

const stats::Sample& PointResult::metric(const std::string& name) const {
    const auto it = metrics.find(name);
    if (it == metrics.end()) {
        throw std::out_of_range("point '" + scenario + "/" + canonical_point(params) +
                                "' has no metric '" + name + "'");
    }
    return it->second;
}

std::uint64_t point_seed(std::uint64_t base, const std::string& scenario,
                         const ParamValues& values) noexcept {
    std::uint64_t hash = fnv1a(scenario, 0xCBF29CE484222325ULL);
    hash = fnv1a("\x1f" + canonical_point(values), hash);
    return rng::mix64(base ^ rng::mix64(hash));
}

PointResult run_point(const Scenario& scenario, const ParamValues& values,
                      const RunOptions& options) {
    auto results = run_points(scenario, {values}, options);
    return std::move(results.front());
}

std::vector<PointResult> run_sweep(const Scenario& scenario, const SweepSpec& sweep,
                                   const RunOptions& options) {
    return run_points(scenario, sweep.points(), options);
}

}  // namespace smn::exp
