#include "exp/runner.hpp"

#include <exception>
#include <stdexcept>

#include "rng/rng.hpp"

namespace smn::exp {
namespace {

std::uint64_t fnv1a(const std::string& text, std::uint64_t hash) noexcept {
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

}  // namespace

const stats::Sample& PointResult::metric(const std::string& name) const {
    const auto it = metrics.find(name);
    if (it == metrics.end()) {
        throw std::out_of_range("point '" + scenario + "/" + canonical_point(params) +
                                "' has no metric '" + name + "'");
    }
    return it->second;
}

std::uint64_t point_seed(std::uint64_t base, const std::string& scenario,
                         const ParamValues& values) noexcept {
    std::uint64_t hash = fnv1a(scenario, 0xCBF29CE484222325ULL);
    hash = fnv1a("\x1f" + canonical_point(values), hash);
    return rng::mix64(base ^ rng::mix64(hash));
}

PointResult run_point(const Scenario& scenario, const ParamValues& values,
                      const RunOptions& options) {
    if (options.reps < 1) throw std::invalid_argument("run_point: reps must be >= 1");
    const ScenarioParams params{scenario.params, values};

    PointResult result;
    result.scenario = scenario.name;
    result.params = values;
    result.reps = options.reps;
    result.seed = point_seed(options.seed, scenario.name, values);

    // Each replication writes its metrics into a preallocated slot; the
    // ordered aggregation below is what makes the result thread-invariant.
    // Exceptions are captured per slot and rethrown on the caller's thread:
    // run_replications workers are plain std::threads, so a throwing body
    // (e.g. lazy parameter validation inside run_rep) would otherwise hit
    // std::terminate — and only when threads > 1.
    std::vector<Metrics> rep_metrics(static_cast<std::size_t>(options.reps));
    std::vector<std::exception_ptr> rep_errors(static_cast<std::size_t>(options.reps));
    const int threads = options.threads > 0 ? options.threads : sim::default_threads();
    Meter meter;
    meter.start();
    (void)sim::run_replications(
        options.reps, result.seed,
        [&](int rep, std::uint64_t seed) {
            try {
                rep_metrics[static_cast<std::size_t>(rep)] = scenario.run_rep(params, seed);
            } catch (...) {
                rep_errors[static_cast<std::size_t>(rep)] = std::current_exception();
            }
            return 0.0;
        },
        threads);
    meter.stop();
    for (const auto& error : rep_errors) {
        if (error) std::rethrow_exception(error);
    }

    for (const auto& metrics : rep_metrics) {
        for (const auto& [name, value] : metrics) {
            if (name.starts_with("timing.")) {
                // Reserved prefix: host-dependent phase seconds — keep out
                // of the deterministic metric block (see PointResult).
                result.phase_seconds[name.substr(7)] += value;
                continue;
            }
            result.metrics[name].add(value);
            if (name == "steps") meter.add_steps(value);
        }
    }
    result.wall_seconds = meter.wall_seconds();
    result.steps = meter.steps();
    result.steps_per_second = meter.steps_per_second();
    return result;
}

std::vector<PointResult> run_sweep(const Scenario& scenario, const SweepSpec& sweep,
                                   const RunOptions& options) {
    std::vector<PointResult> results;
    const auto points = sweep.points();
    results.reserve(points.size());
    for (const auto& point : points) {
        results.push_back(run_point(scenario, point, options));
    }
    return results;
}

}  // namespace smn::exp
