#include "exp/writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "stats/table.hpp"

namespace smn::exp {
namespace {

/// JSON number or null (for NaN/±inf, which JSON cannot represent).
std::string json_number(double value) {
    if (!std::isfinite(value)) return "null";
    return format_double(value);
}

void append_stats_object(std::string& out, const stats::Sample& sample) {
    out += "{\"count\":" + std::to_string(sample.count());
    out += ",\"mean\":" + json_number(sample.mean());
    out += ",\"stderr\":" + json_number(sample.stderr_mean());
    out += ",\"median\":" + json_number(sample.median());
    out += ",\"min\":" + json_number(sample.min());
    out += ",\"max\":" + json_number(sample.max());
    out += '}';
}

}  // namespace

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string format_double(double value) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    if (ec != std::errc{}) return "0";
    return std::string(buf, ptr);
}

void JsonlWriter::write(const PointResult& result) {
    std::string line = "{\"schema\":1";
    line += ",\"scenario\":\"" + json_escape(result.scenario) + '"';
    line += ",\"params\":{";
    bool first = true;
    for (const auto& [key, value] : result.params) {
        if (!first) line += ',';
        first = false;
        line += '"' + json_escape(key) + "\":\"" + json_escape(value) + '"';
    }
    line += "},\"reps\":" + std::to_string(result.reps);
    line += ",\"seed\":" + std::to_string(result.seed);
    line += ",\"metrics\":{";
    first = true;
    for (const auto& [name, sample] : result.metrics) {
        if (!first) line += ',';
        first = false;
        line += '"' + json_escape(name) + "\":";
        append_stats_object(line, sample);
    }
    line += '}';
    if (!result.failures.empty()) {
        // Failure fields appear only when something failed, so healthy
        // runs stay byte-identical to builds that predate them.
        line += ",\"failed_reps\":" + std::to_string(result.failures.size());
        line += ",\"failures\":[";
        bool first_failure = true;
        for (const auto& failure : result.failures) {
            if (!first_failure) line += ',';
            first_failure = false;
            line += "{\"rep\":" + std::to_string(failure.rep);
            line += ",\"attempts\":" + std::to_string(failure.attempts);
            line += ",\"error\":\"" + json_escape(failure.message) + "\"}";
        }
        line += ']';
    }
    if (counters_ && !result.counters.empty()) {
        line += ",\"counters\":{";
        bool first_counter = true;
        for (const auto& [name, value] : result.counters) {
            if (!first_counter) line += ',';
            first_counter = false;
            line += '"' + json_escape(name) + "\":" + json_number(value);
        }
        line += '}';
    }
    if (timings_) {
        line += ",\"timing\":{\"wall_s\":" + json_number(result.wall_seconds);
        line += ",\"sweep_wall_s\":" + json_number(result.sweep_wall_seconds);
        line += ",\"steps\":" + json_number(result.steps);
        line += ",\"steps_per_s\":" + json_number(result.steps_per_second);
        if (!result.phase_seconds.empty()) {
            double total = 0.0;
            for (const auto& [name, seconds] : result.phase_seconds) total += seconds;
            line += ",\"phases\":{";
            bool first_phase = true;
            for (const auto& [name, seconds] : result.phase_seconds) {
                if (!first_phase) line += ',';
                first_phase = false;
                line += '"' + json_escape(name) + "\":" + json_number(seconds);
            }
            for (const auto& [name, seconds] : result.phase_seconds) {
                line += ",\"" + json_escape(name + "_frac") +
                        "\":" + json_number(total > 0.0 ? seconds / total : 0.0);
            }
            line += '}';
        }
        line += '}';
    }
    line += "}\n";
    // One write + flush per record: a crash can only ever lose whole
    // trailing lines, never leave a partial JSON object mid-file (the
    // crash-resume pipeline depends on this).
    *os_ << line;
    os_->flush();
}

void CsvWriter::write(const PointResult& result) {
    std::vector<std::string> headers{"scenario", "params", "seed",   "reps", "metric",
                                     "count",    "mean",   "stderr", "median", "min", "max"};
    if (timings_) {
        headers.push_back("wall_s");
        headers.push_back("sweep_wall_s");
        headers.push_back("steps_per_s");
    }
    stats::Table table{headers};
    for (const auto& [name, sample] : result.metrics) {
        std::vector<std::string> row{result.scenario,
                                     canonical_point(result.params),
                                     std::to_string(result.seed),
                                     std::to_string(result.reps),
                                     name,
                                     std::to_string(sample.count()),
                                     format_double(sample.mean()),
                                     format_double(sample.stderr_mean()),
                                     format_double(sample.median()),
                                     format_double(sample.min()),
                                     format_double(sample.max())};
        if (timings_) {
            row.push_back(format_double(result.wall_seconds));
            row.push_back(format_double(result.sweep_wall_seconds));
            row.push_back(format_double(result.steps_per_second));
        }
        table.add_row(std::move(row));
    }
    if (counters_) {
        // Counters are per-point sums, not replication samples — render
        // them as "counter.<name>" rows with the value in the mean column
        // so long-format consumers pick them up without a schema change.
        for (const auto& [name, value] : result.counters) {
            std::vector<std::string> row{result.scenario,
                                         canonical_point(result.params),
                                         std::to_string(result.seed),
                                         std::to_string(result.reps),
                                         "counter." + name,
                                         std::to_string(result.reps),
                                         format_double(value),
                                         "",
                                         "",
                                         "",
                                         ""};
            if (timings_) {
                row.push_back(format_double(result.wall_seconds));
                row.push_back(format_double(result.sweep_wall_seconds));
                row.push_back(format_double(result.steps_per_second));
            }
            table.add_row(std::move(row));
        }
    }
    table.print_csv(*os_, !wrote_header_);
    os_->flush();  // record-boundary flush, same contract as JsonlWriter
    wrote_header_ = true;
}

void write_failed_units(std::ostream& os, const std::vector<PointResult>& results) {
    std::size_t failed = 0;
    for (const auto& result : results) failed += result.failures.size();
    if (failed == 0) return;
    std::string line = "{\"schema\":1,\"record\":\"failed_units\"";
    line += ",\"scenario\":\"" + json_escape(results.front().scenario) + '"';
    line += ",\"failed_reps\":" + std::to_string(failed);
    line += ",\"units\":[";
    bool first = true;
    for (const auto& result : results) {
        for (const auto& failure : result.failures) {
            if (!first) line += ',';
            first = false;
            line += "{\"params\":\"" + json_escape(canonical_point(result.params)) + '"';
            line += ",\"rep\":" + std::to_string(failure.rep);
            line += ",\"attempts\":" + std::to_string(failure.attempts);
            line += ",\"error\":\"" + json_escape(failure.message) + "\"}";
        }
    }
    line += "]}\n";
    os << line;
    os.flush();
}

void write_provenance(std::ostream& os, const RunProvenance& run) {
    const auto info = obs::build_info();
    std::string line = "{\"schema\":1,\"record\":\"provenance\"";
    line += ",\"git_sha\":\"" + json_escape(info.git_sha) + '"';
    line += ",\"build_type\":\"" + json_escape(info.build_type) + '"';
    line += ",\"simd\":\"" + json_escape(info.simd_backend) + '"';
    line += ",\"obs_enabled\":";
    line += info.obs_enabled ? "true" : "false";
    line += ",\"threads\":" + std::to_string(run.threads);
    line += ",\"step_threads\":" + std::to_string(run.step_threads);
    line += ",\"seed\":" + std::to_string(run.seed);
    line += ",\"reps\":" + std::to_string(run.reps);
    line += "}\n";
    os << line;
    os.flush();
}

void write_counters_total(std::ostream& os) {
    auto& registry = obs::Registry::instance();
    std::string line = "{\"schema\":1,\"record\":\"counters_total\"";
    line += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : registry.counters_snapshot()) {
        if (!first) line += ',';
        first = false;
        line += '"' + json_escape(name) + "\":" + std::to_string(value);
    }
    line += '}';
    const auto gauges = registry.gauges_snapshot();
    if (!gauges.empty()) {
        line += ",\"gauges\":{";
        first = true;
        for (const auto& [name, value] : gauges) {
            if (!first) line += ',';
            first = false;
            line += '"' + json_escape(name) + "\":" + std::to_string(value);
        }
        line += '}';
    }
    bool any_hist = false;
    registry.for_each_histogram([&](const std::string& name, const obs::Histogram& hist) {
        line += any_hist ? "," : ",\"histograms\":{";
        any_hist = true;
        line += '"' + json_escape(name) + "\":{\"count\":" + std::to_string(hist.count());
        line += ",\"sum\":" + std::to_string(hist.sum());
        line += ",\"buckets\":[";
        // Trailing zero buckets are elided: the array holds buckets
        // 0..last-nonzero of the power-of-two histogram.
        int last = -1;
        for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
            if (hist.bucket(i) != 0) last = i;
        }
        for (int i = 0; i <= last; ++i) {
            if (i) line += ',';
            line += std::to_string(hist.bucket(i));
        }
        line += "]}";
    });
    if (any_hist) line += '}';
    line += "}\n";
    os << line;
    os.flush();
}

}  // namespace smn::exp
