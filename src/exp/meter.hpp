// meter.hpp — wall-clock and throughput capture for experiment runs.
//
// A Meter wraps one parameter point: start() before the replications,
// stop() after, add_steps() with whatever the replications report through
// the reserved "steps" metric. Timing is observational only — it never
// enters the deterministic result record unless the caller explicitly asks
// for it (`smn_lab --timings`), so result files stay bit-identical across
// machines and thread counts.
#pragma once

#include <chrono>

namespace smn::exp {

/// Wall-clock + simulated-steps meter for one run.
class Meter {
public:
    void start() noexcept { begin_ = clock::now(); }
    void stop() noexcept {
        wall_seconds_ += std::chrono::duration<double>(clock::now() - begin_).count();
    }

    void add_steps(double steps) noexcept { steps_ += steps; }

    [[nodiscard]] double wall_seconds() const noexcept { return wall_seconds_; }
    [[nodiscard]] double steps() const noexcept { return steps_; }
    /// Simulated steps per wall-clock second; 0 when nothing was measured.
    [[nodiscard]] double steps_per_second() const noexcept {
        return wall_seconds_ > 0.0 ? steps_ / wall_seconds_ : 0.0;
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point begin_{};
    double wall_seconds_{0.0};
    double steps_{0.0};
};

}  // namespace smn::exp
