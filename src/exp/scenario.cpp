#include "exp/scenario.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace smn::exp {
namespace {

const ParamSpec& spec_for(const std::vector<ParamSpec>& specs, const std::string& key) {
    for (const auto& spec : specs) {
        if (spec.key == key) return spec;
    }
    throw std::invalid_argument("scenario: undeclared parameter '" + key + "'");
}

}  // namespace

std::int64_t resolve_count(const std::string& value, std::int64_t n) {
    if (n < 1) throw std::invalid_argument("resolve_count: n must be >= 1");
    const auto dn = static_cast<double>(n);
    if (value == "log") {
        return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(std::log2(dn))));
    }
    if (value == "sqrt") {
        return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(std::sqrt(dn))));
    }
    if (value == "linear") return n;
    try {
        std::size_t used = 0;
        const std::int64_t parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        throw std::invalid_argument("resolve_count: want an integer or log/sqrt/linear, got '" +
                                    value + "'");
    }
}

ScenarioParams::ScenarioParams(const std::vector<ParamSpec>& specs, ParamValues values)
    : specs_{&specs}, values_{std::move(values)} {
    for (const auto& [key, value] : values_) spec_for(specs, key);  // typo check
}

const std::string& ScenarioParams::get_string(const std::string& key) const {
    const auto it = values_.find(key);
    if (it != values_.end()) return it->second;
    return spec_for(*specs_, key).fallback;
}

std::int64_t ScenarioParams::get_int(const std::string& key) const {
    const auto& value = get_string(key);
    try {
        std::size_t used = 0;
        const std::int64_t parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        throw std::invalid_argument("param '" + key + "' expects an integer, got '" + value +
                                    "'");
    }
}

double ScenarioParams::get_double(const std::string& key) const {
    const auto& value = get_string(key);
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        throw std::invalid_argument("param '" + key + "' expects a number, got '" + value + "'");
    }
}

std::int64_t ScenarioParams::get_count(const std::string& key, std::int64_t n) const {
    try {
        return resolve_count(get_string(key), n);
    } catch (const std::invalid_argument& err) {
        throw std::invalid_argument("param '" + key + "': " + err.what());
    }
}

ScenarioRegistry& ScenarioRegistry::instance() {
    static ScenarioRegistry registry;
    return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
    if (scenario.name.empty()) throw std::invalid_argument("scenario: empty name");
    if (!scenario.run_rep) {
        throw std::invalid_argument("scenario '" + scenario.name + "': missing run_rep body");
    }
    std::set<std::string> keys;
    for (const auto& spec : scenario.params) {
        if (!keys.insert(spec.key).second) {
            throw std::invalid_argument("scenario '" + scenario.name +
                                        "': duplicate parameter '" + spec.key + "'");
        }
    }
    // Validate the canned sweeps against the declared parameters so a typo
    // in a registration fails at startup, not at --quick time in CI.
    for (const auto* sweep : {&scenario.default_sweep, &scenario.quick_sweep}) {
        const auto parsed = SweepSpec::parse(*sweep);
        for (const auto& [key, values] : parsed.axes()) {
            if (!keys.count(key)) {
                throw std::invalid_argument("scenario '" + scenario.name + "': sweep axis '" +
                                            key + "' is not a declared parameter");
            }
        }
    }
    const auto name = scenario.name;
    if (!by_name_.emplace(name, std::move(scenario)).second) {
        throw std::invalid_argument("scenario '" + name + "' registered twice");
    }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const noexcept {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
    if (const auto* scenario = find(name)) return *scenario;
    std::string known;
    for (const auto& [key, value] : by_name_) {
        if (!known.empty()) known += ", ";
        known += key;
    }
    throw std::out_of_range("unknown scenario '" + name + "' (registered: " + known + ")");
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
    std::vector<const Scenario*> out;
    out.reserve(by_name_.size());
    for (const auto& [name, scenario] : by_name_) out.push_back(&scenario);
    return out;
}

}  // namespace smn::exp
