// step.hpp — single-step kernels for random walks on the grid.
//
// The paper's mobility model (Sec. 2): at each synchronized time step an
// agent at node v with n_v ∈ {2,3,4} neighbors moves to each neighbor with
// probability 1/5 and stays put with probability 1 − n_v/5. This choice
// makes the uniform distribution over nodes *stationary* (each directed
// edge carries flow 1/(5n) both ways), which the analysis leans on ("at any
// time step the agents are placed uniformly and independently at random").
//
// Two ablation kernels are provided:
//  * kSimple    — classic simple random walk (uniform over neighbors, never
//                 stays): stationary distribution proportional to degree.
//  * kLazyHalf  — stay with probability 1/2, else uniform neighbor: the
//                 standard lazy walk used e.g. by cover-time literature.
#pragma once

#include <array>
#include <cstdint>

#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "rng/rng.hpp"

namespace smn::walk {

/// Selects the single-step transition rule.
enum class WalkKind : std::uint8_t {
    kLazyPaper,  ///< paper's rule: each neighbor w.p. 1/5, stay otherwise
    kSimple,     ///< uniform neighbor, never stays
    kLazyHalf,   ///< stay w.p. 1/2, else uniform neighbor
};

[[nodiscard]] constexpr const char* walk_kind_name(WalkKind kind) noexcept {
    switch (kind) {
        case WalkKind::kLazyPaper: return "lazy-1/5";
        case WalkKind::kSimple: return "simple";
        case WalkKind::kLazyHalf: return "lazy-1/2";
    }
    return "?";
}

/// One lattice displacement of a batched walk kernel.
struct StepDelta {
    std::int8_t dx{0};
    std::int8_t dy{0};
};

/// Direction table for the branch-light batched kernels. Entry
/// [mask * 5 + u] is the displacement of the u-th *present* direction in
/// the grid's neighbor order (−x, +x, −y, +y), where bit d of `mask` says
/// whether direction d exists at the agent's node; u ≥ popcount(mask)
/// yields {0,0} (stay). This reproduces Grid2D::neighbors' compaction
/// exactly, so table-driven stepping is bit-identical to walk::step.
[[nodiscard]] constexpr std::array<StepDelta, 16 * 5> make_step_table() noexcept {
    std::array<StepDelta, 16 * 5> table{};
    constexpr StepDelta dirs[4] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
    for (unsigned mask = 0; mask < 16; ++mask) {
        unsigned count = 0;
        for (unsigned d = 0; d < 4; ++d) {
            if (mask & (1U << d)) table[mask * 5 + count++] = dirs[d];
        }
    }
    return table;
}

inline constexpr std::array<StepDelta, 16 * 5> kStepTable = make_step_table();

/// kStepTable re-packed for the SIMD apply kernel: one int32 per entry,
/// dx in the low 16 bits, dy in the high 16 (both as sign-extendable
/// 16-bit fields). An entry is 0 exactly when the draw means "stay", so
/// the vector kernel recovers the moved-lane mask with one compare. Lane
/// math: dx = (v << 16) >> 16 (arithmetic), dy = v >> 16 (arithmetic).
[[nodiscard]] constexpr std::array<std::int32_t, 16 * 5> make_step_table_packed() noexcept {
    std::array<std::int32_t, 16 * 5> table{};
    for (std::size_t i = 0; i < table.size(); ++i) {
        const auto dx16 = static_cast<std::uint16_t>(kStepTable[i].dx);
        const auto dy16 = static_cast<std::uint16_t>(kStepTable[i].dy);
        table[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(dx16) |
                                             (static_cast<std::uint32_t>(dy16) << 16));
    }
    return table;
}

inline constexpr std::array<std::int32_t, 16 * 5> kStepTablePacked = make_step_table_packed();

/// Presence mask of the four grid directions at (x, y) on a bounded
/// width×height grid; popcount equals the node degree n_v.
[[nodiscard]] constexpr unsigned direction_mask(grid::Coord x, grid::Coord y, grid::Coord width,
                                                grid::Coord height) noexcept {
    return static_cast<unsigned>(x > 0) | static_cast<unsigned>(x + 1 < width) << 1 |
           static_cast<unsigned>(y > 0) << 2 | static_cast<unsigned>(y + 1 < height) << 3;
}

/// Performs one step of the selected walk from `p` on `grid`.
template <typename GridT>
[[nodiscard]] inline grid::Point step(const GridT& grid, grid::Point p, rng::Rng& rng,
                                      WalkKind kind = WalkKind::kLazyPaper) noexcept {
    std::array<grid::Point, GridT::kMaxDegree> nbr;  // filled below
    const int deg = grid.neighbors(p, std::span<grid::Point, GridT::kMaxDegree>{nbr});
    switch (kind) {
        case WalkKind::kLazyPaper: {
            // Draw u uniform in {0..4}; u < deg selects a neighbor (each
            // with probability exactly 1/5), otherwise stay.
            const auto u = rng.below(5);
            return u < static_cast<std::uint64_t>(deg) ? nbr[static_cast<std::size_t>(u)] : p;
        }
        case WalkKind::kSimple: {
            const auto u = rng.below(static_cast<std::uint64_t>(deg));
            return nbr[static_cast<std::size_t>(u)];
        }
        case WalkKind::kLazyHalf: {
            const auto u = rng.below(static_cast<std::uint64_t>(2 * deg));
            return u < static_cast<std::uint64_t>(deg) ? nbr[static_cast<std::size_t>(u)] : p;
        }
    }
    return p;  // unreachable
}

/// Probability that the selected walk stays put at `p` (for tests and
/// analytical cross-checks).
template <typename GridT>
[[nodiscard]] inline double stay_probability(const GridT& grid, grid::Point p,
                                             WalkKind kind) noexcept {
    const int deg = grid.degree(p);
    switch (kind) {
        case WalkKind::kLazyPaper: return 1.0 - static_cast<double>(deg) / 5.0;
        case WalkKind::kSimple: return 0.0;
        case WalkKind::kLazyHalf: return 0.5;
    }
    return 0.0;  // unreachable
}

}  // namespace smn::walk
