// meeting.hpp — probes for the paper's core random-walk lemmas.
//
// These small drivers directly instantiate the events whose probabilities
// Lemmas 1 and 3 bound:
//
//  * hit_within   (Lemma 1)  — does a walk started at v₀ visit v within
//                              ||v−v₀||² steps?  P ≥ c₁/log||v−v₀||.
//  * meet_within  (Lemma 3)  — do two walks at initial distance d meet at
//                              the same node, *inside the lens*
//                              D = {x : ||x−a₀|| ≤ d and ||x−b₀|| ≤ d},
//                              within T = d² steps?  P ≥ c₃/log d.
//
// The bench harnesses estimate these probabilities over many replications
// and report P·log d, which the lemmas predict to be bounded below by a
// constant.
#pragma once

#include <cstdint>
#include <optional>

#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "rng/rng.hpp"
#include "walk/step.hpp"

namespace smn::walk {

/// Outcome of a hitting probe.
struct HitResult {
    bool hit{false};              ///< target visited within the budget
    std::int64_t hit_time{-1};    ///< step of first visit, −1 if none
};

/// Runs a single walk from `start` for at most `max_steps` steps and
/// reports whether (and when) it first visits `target`. Visiting at time 0
/// (start == target) counts as an immediate hit.
[[nodiscard]] HitResult hit_within(const grid::Grid2D& grid, grid::Point start,
                                   grid::Point target, std::int64_t max_steps, rng::Rng& rng,
                                   WalkKind kind = WalkKind::kLazyPaper);

/// Outcome of a meeting probe.
struct MeetResult {
    bool met{false};               ///< walks co-located within the budget
    bool met_in_lens{false};       ///< ... and the meeting node was in D
    std::int64_t meet_time{-1};    ///< step of first co-location, −1 if none
    grid::Point meet_node{};       ///< where they first met (if met)
};

/// Runs two independent walks from `a0` and `b0` for at most `max_steps`
/// synchronized steps; reports the first time a_t == b_t, and whether that
/// node lies in the lens D (within d = ||a0−b0|| of both starts), which is
/// the event of Lemma 3. Starting co-located counts as meeting at t = 0.
[[nodiscard]] MeetResult meet_within(const grid::Grid2D& grid, grid::Point a0, grid::Point b0,
                                     std::int64_t max_steps, rng::Rng& rng,
                                     WalkKind kind = WalkKind::kLazyPaper);

}  // namespace smn::walk
