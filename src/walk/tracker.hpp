// tracker.hpp — per-walk statistics: displacement, range, hitting.
//
// WalkTracker follows a single walk and maintains the quantities the
// paper's Lemmas 1 and 2 speak about:
//   * displacement  — Manhattan distance from the starting node (Lemma 2.1
//                     bounds its tail by 2e^{−λ²/2} per coordinate
//                     martingale);
//   * range         — number of *distinct* nodes visited (Lemma 2.2:
//                     ≥ c₂ ℓ/log ℓ with probability > 1/2);
//   * hitting       — first time a designated target node is visited
//                     (Lemma 1: within d² steps w.p. ≥ c₁/log d).
//
// The visited-set is a dense byte map over node ids with an undo list, so
// repeated experiments on the same grid reuse the allocation (reset is
// O(#visited), not O(n)).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/grid.hpp"
#include "grid/point.hpp"

namespace smn::walk {

/// Tracks displacement/range/hitting for one walk on one grid.
class WalkTracker {
public:
    explicit WalkTracker(const grid::Grid2D& grid)
        : grid_{grid}, visited_(static_cast<std::size_t>(grid.size()), 0) {}

    /// Begins tracking a fresh walk that starts at `start`. Clears previous
    /// marks in O(range of previous walk).
    void begin(grid::Point start) {
        for (const auto id : visit_log_) visited_[static_cast<std::size_t>(id)] = 0;
        visit_log_.clear();
        start_ = start;
        current_ = start;
        steps_ = 0;
        max_displacement_ = 0;
        mark(start);
    }

    /// Records the walk's position after its next step.
    void record(grid::Point p) {
        current_ = p;
        ++steps_;
        const auto d = grid::manhattan(start_, p);
        if (d > max_displacement_) max_displacement_ = d;
        if (!visited_[static_cast<std::size_t>(grid_.node_id(p))]) mark(p);
    }

    [[nodiscard]] grid::Point start() const noexcept { return start_; }
    [[nodiscard]] grid::Point current() const noexcept { return current_; }
    [[nodiscard]] std::int64_t steps() const noexcept { return steps_; }

    /// Manhattan distance between the current position and the start.
    [[nodiscard]] std::int64_t displacement() const noexcept {
        return grid::manhattan(start_, current_);
    }

    /// Maximum displacement observed at any step so far (Lemma 2.1 bounds
    /// the probability this exceeds λ√ℓ).
    [[nodiscard]] std::int64_t max_displacement() const noexcept { return max_displacement_; }

    /// Number of distinct nodes visited, including the start (the paper's
    /// R_ℓ in Lemma 2.2).
    [[nodiscard]] std::int64_t range() const noexcept {
        return static_cast<std::int64_t>(visit_log_.size());
    }

    /// Whether the walk has visited `p` at least once.
    [[nodiscard]] bool has_visited(grid::Point p) const noexcept {
        return visited_[static_cast<std::size_t>(grid_.node_id(p))] != 0;
    }

    /// Ids of all distinct nodes visited, in first-visit order.
    [[nodiscard]] const std::vector<grid::NodeId>& visit_log() const noexcept {
        return visit_log_;
    }

private:
    void mark(grid::Point p) {
        const auto id = grid_.node_id(p);
        visited_[static_cast<std::size_t>(id)] = 1;
        visit_log_.push_back(id);
    }

    grid::Grid2D grid_;
    std::vector<std::uint8_t> visited_;
    std::vector<grid::NodeId> visit_log_;
    grid::Point start_{};
    grid::Point current_{};
    std::int64_t steps_{0};
    std::int64_t max_displacement_{0};
};

}  // namespace smn::walk
