// diffusion.hpp — diffusion diagnostics for the walk kernels.
//
// The paper's analysis is driven by the diffusive behaviour of the lazy
// walk: displacement ~ √t (Lemma 2). These helpers quantify that directly:
//
//  * step_variance — the exact per-step variance E[Δx² + Δy²] of a kernel
//    at an interior node: 4/5 for the paper's 1/5 rule (each of 4 moves
//    w.p. 1/5 contributes 1), 1 for the simple walk, 1/2 for lazy-1/2.
//  * estimate_msd — empirical mean squared (Euclidean) displacement after
//    t steps; for an interior walk MSD(t) ≈ step_variance · t until the
//    boundary bites.
//
// estimate_msd is used by tests to pin each kernel's diffusion constant
// and by the ablation analysis to explain constant-factor differences in
// T_B between kernels (slower diffusion ⇒ proportionally slower meetings).
#pragma once

#include <cstdint>

#include "grid/grid.hpp"
#include "rng/rng.hpp"
#include "walk/step.hpp"

namespace smn::walk {

/// Exact per-step displacement variance E[Δx²+Δy²] at an interior node.
[[nodiscard]] constexpr double step_variance(WalkKind kind) noexcept {
    switch (kind) {
        case WalkKind::kLazyPaper: return 4.0 / 5.0;
        case WalkKind::kSimple: return 1.0;
        case WalkKind::kLazyHalf: return 0.5;
    }
    return 0.0;  // unreachable
}

/// Empirical mean squared displacement after `steps` steps, averaged over
/// `reps` independent walks from `start`.
[[nodiscard]] inline double estimate_msd(const grid::Grid2D& grid, grid::Point start,
                                         std::int64_t steps, int reps, rng::Rng& rng,
                                         WalkKind kind = WalkKind::kLazyPaper) {
    double total = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        grid::Point p = start;
        for (std::int64_t t = 0; t < steps; ++t) p = step(grid, p, rng, kind);
        total += static_cast<double>(grid::euclidean_sq(start, p));
    }
    return total / reps;
}

}  // namespace smn::walk
