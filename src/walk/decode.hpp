// decode.hpp — block decode of raw RNG words into lazy-paper draws.
//
// The lazy-paper walk consumes one bounded draw u ∈ [0,5) per agent, via
// Lemire's multiply-shift rejection method (rng::Rng::below). This header
// replays pass 1 of that method over a whole block of buffered words at
// once: draw = hi64(word * 5), reject iff lo64(word * 5) < threshold.
//
// Both variants below are *word-exact* replicas of Rng::below(5): same
// draws, same rejection decision per word. decode_draws5() is compiled
// against the configure-time SIMD backend (util/simd.hpp); the _scalar
// variant is always plain C++ and serves as the in-process reference the
// unit tests and microbenches compare against.
//
// Why rejection can be tested with a compare-to-zero: the Lemire
// threshold for bound 5 is (2^64 - 5) mod 5 = 1 (since 2^64 ≡ 1 mod 5),
// so a word is rejected iff lo64(word*5) < 1, i.e. == 0. And because 5 is
// odd (invertible mod 2^64), lo64(word*5) == 0 iff word == 0 — about a
// 2^-64 event per word, handled by falling back to the exact scalar
// BlockRng replay for the whole block (see AgentEnsemble::step_indices).
//
// Why the 64-bit high-multiply needs no mulhi instruction: split
// word = hi·2^32 + lo. Then word·5 = hi5·2^32 + lo5 with hi5 = 5·hi and
// lo5 = 5·lo, both < 2^35, so
//   hi64(word·5) = (hi5 + (lo5 >> 32)) >> 32
// computes exactly in 64-bit lanes using only shifts and adds — all of
// which AVX2/NEON have for 64-bit elements (they lack 64×64 multiplies).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"

namespace smn::walk {

/// Lemire rejection threshold for bound 5: (2^64 - 5) mod 5.
inline constexpr std::uint64_t kLemireThreshold5 = (0 - std::uint64_t{5}) % 5;

/// Reference decode: draws[i] = hi64(words[i] * 5) for i < len. Returns
/// false — leaving draws unusable — iff any word would have been rejected
/// by Rng::below(5).
[[nodiscard]] inline bool decode_draws5_scalar(const std::uint64_t* words, std::size_t len,
                                               std::int32_t* draws) noexcept {
    std::uint64_t rejected = 0;
    for (std::size_t i = 0; i < len; ++i) {
        const auto m =
            static_cast<__uint128_t>(words[i]) * static_cast<__uint128_t>(std::uint64_t{5});
        rejected |= static_cast<std::uint64_t>(static_cast<std::uint64_t>(m) < kLemireThreshold5);
        draws[i] = static_cast<std::int32_t>(m >> 64);
    }
    return rejected == 0;
}

/// As decode_draws5_scalar, through the configure-time SIMD backend.
[[nodiscard]] inline bool decode_draws5(const std::uint64_t* words, std::size_t len,
                                        std::int32_t* draws) noexcept {
#if defined(SMN_SIMD_SCALAR)
    return decode_draws5_scalar(words, len, draws);
#else
    // The compare-to-zero rejection test below is only the Lemire test for
    // bound 5 because the threshold is exactly 1.
    static_assert(kLemireThreshold5 == 1);
    namespace s = util::simd;
    const auto zero = s::U64x4::splat(0);
    const auto lo_mask = s::U64x4::splat(0xFFFFFFFFu);
    auto reject = zero;
    std::size_t i = 0;
    for (; i + s::kU64Lanes <= len; i += s::kU64Lanes) {
        const auto x = s::U64x4::load(words + i);
        // lo64(x*5) == 0 ⇔ rejected (accumulated, resolved once at the end).
        const auto x5lo = s::add(s::shift_left<2>(x), x);
        reject = s::bit_or(reject, s::cmpeq(x5lo, zero));
        // draw = hi64(x*5) via the split-word identity in the header note.
        const auto hi5x = s::shift_right<32>(x);
        const auto lo5x = s::bit_and(x, lo_mask);
        const auto hi5 = s::add(s::shift_left<2>(hi5x), hi5x);
        const auto lo5 = s::add(s::shift_left<2>(lo5x), lo5x);
        const auto draw = s::shift_right<32>(s::add(hi5, s::shift_right<32>(lo5)));
        s::store_narrow(draws + i, draw);
    }
    bool ok = !s::any(reject);
    if (i < len) ok &= decode_draws5_scalar(words + i, len - i, draws + i);
    return ok;
#endif
}

}  // namespace smn::walk
