// ensemble.hpp — a population of k agents walking synchronously on a grid.
//
// AgentEnsemble owns the positions of the k agents and advances them one
// synchronized step at a time, exactly as in the paper's model (Sec. 2):
// all agents move simultaneously and independently. Initial placement is
// uniform and independent over the grid nodes.
//
// Layout: structure-of-arrays. The walk kernel reads and writes separate
// x/y coordinate arrays (vectorization-friendly, and the batched decode
// pass below touches only raw RNG words and one byte per agent); an
// array-of-Point mirror is kept coherent in the same pass so the wide
// span<const Point> API surface (spatial indexes, observers, renderers)
// stays zero-copy.
//
// Stepping is batched: raw RNG words are drawn in blocks (rng::BlockRng)
// and decoded branch-light through walk::kStepTable. The kernel consumes
// exactly the same engine-word stream as the scalar walk::step loop it
// replaced — one bounded draw per moving agent, in agent order, Lemire
// rejections included — so every existing seed reproduces bit-identical
// trajectories (see docs/performance.md for the invariant).
//
// The lazy-paper step_all path is additionally vectorized end to end
// (util/simd.hpp — AVX2/NEON/scalar selected at configure time): the
// Lemire decode runs 4 words per 64-bit vector (walk/decode.hpp) and the
// position update runs 8 agents per 32-bit vector — boundary mask, packed
// step-table gather, SoA stores and the AoS mirror interleave are all
// branch-free lane math; only agents that actually moved re-enter scalar
// code, in ascending lane order, to fire the on_move hook. Lanes are just
// a partition of the agent order, so the trajectories (and the word
// stream, which the decode never reorders) stay bit-identical across
// backends — the force-scalar CI leg replays the same goldens to prove it.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "obs/tally.hpp"
#include "rng/rng.hpp"
#include "util/simd.hpp"
#include "walk/decode.hpp"
#include "walk/step.hpp"

namespace smn::walk {

/// Index of an agent in [0, k).
using AgentId = std::int32_t;

/// k agents on a Grid2D, stepped synchronously.
class AgentEnsemble {
public:
    /// Telemetry tallies of the batched step kernel (zero under
    /// -DSMN_DISABLE_OBS): how many RNG blocks took the vectorized decode
    /// vs the exact scalar replay (Lemire rejection, or ablation walks
    /// that never decode in bulk).
    struct DecodeStats {
        std::int64_t blocks_decoded{0};  ///< blocks decoded rejection-free
        std::int64_t blocks_scalar{0};   ///< blocks replayed word-by-word
    };


    /// Creates k agents placed uniformly and independently at random.
    /// Throws std::invalid_argument if k < 1.
    AgentEnsemble(const grid::Grid2D& grid, std::int32_t k, rng::Rng& rng,
                  WalkKind kind = WalkKind::kLazyPaper)
        : grid_{grid}, kind_{kind} {
        if (k < 1) throw std::invalid_argument("AgentEnsemble: k must be >= 1");
        reserve(static_cast<std::size_t>(k));
        for (std::int32_t i = 0; i < k; ++i) {
            push_agent(random_node(grid, rng));
        }
    }

    /// Creates agents at caller-chosen positions (each must be on the grid).
    AgentEnsemble(const grid::Grid2D& grid, std::vector<grid::Point> positions,
                  WalkKind kind = WalkKind::kLazyPaper)
        : grid_{grid}, kind_{kind} {
        if (positions.empty()) {
            throw std::invalid_argument("AgentEnsemble: need at least one agent");
        }
        reserve(positions.size());
        for (const auto& p : positions) {
            if (!grid_.contains(p)) {
                throw std::invalid_argument("AgentEnsemble: initial position off-grid");
            }
            push_agent(p);
        }
    }

    /// Uniformly random grid node.
    [[nodiscard]] static grid::Point random_node(const grid::Grid2D& grid, rng::Rng& rng) {
        const auto id = static_cast<grid::NodeId>(rng.below(static_cast<std::uint64_t>(grid.size())));
        return grid.point_of(id);
    }

    /// Number of agents k.
    [[nodiscard]] std::int32_t count() const noexcept {
        return static_cast<std::int32_t>(positions_.size());
    }

    [[nodiscard]] const grid::Grid2D& grid() const noexcept { return grid_; }
    [[nodiscard]] WalkKind kind() const noexcept { return kind_; }

    [[nodiscard]] const DecodeStats& decode_stats() const noexcept { return decode_stats_; }

    [[nodiscard]] grid::Point position(AgentId a) const noexcept {
        assert(a >= 0 && a < count());
        return positions_[static_cast<std::size_t>(a)];
    }

    /// Read-only view of all positions (index = agent id). The underlying
    /// storage is stable for the ensemble's lifetime, so spatial indexes
    /// may hold this span across steps.
    [[nodiscard]] std::span<const grid::Point> positions() const noexcept { return positions_; }

    /// SoA coordinate views (index = agent id).
    [[nodiscard]] std::span<const grid::Coord> xs() const noexcept { return xs_; }
    [[nodiscard]] std::span<const grid::Coord> ys() const noexcept { return ys_; }

    /// Moves one agent (used by models where only a subset moves, e.g. the
    /// Frog model).
    void set_position(AgentId a, grid::Point p) noexcept {
        assert(a >= 0 && a < count() && grid_.contains(p));
        const auto i = static_cast<std::size_t>(a);
        xs_[i] = p.x;
        ys_[i] = p.y;
        positions_[i] = p;
    }

    /// Advances every agent by one synchronized step.
    void step_all(rng::Rng& rng) { step_all(rng, [](AgentId, grid::Point, grid::Point) {}); }

    /// As step_all, additionally reporting `on_move(agent, from, to)` for
    /// every agent whose node changed (in agent order) — the hook the
    /// incremental spatial index hangs off.
    template <typename OnMove>
    void step_all(rng::Rng& rng, OnMove&& on_move) {
        if (kind_ != WalkKind::kLazyPaper) {
            step_indices(
                rng, positions_.size(), [](std::size_t i) { return i; }, on_move);
            return;
        }
        // Lazy-paper fast path: agent ids are contiguous, so both decode
        // and apply run vectorized (apply_block). A Lemire rejection
        // anywhere in a block (one word == 0, a ~2^-64 event) drops that
        // block to the exact scalar BlockRng replay, which re-consumes the
        // same buffered words so the engine stream cannot diverge.
        const auto width = grid_.width();
        const auto height = grid_.height();
        const std::size_t count = positions_.size();
        for (std::size_t base = 0; base < count; base += kBlockSize) {
            const std::size_t len = std::min(kBlockSize, count - base);
            block_.fill(rng, len);
            if (decode_block(len)) {
                SMN_TALLY(++decode_stats_.blocks_decoded);
                apply_block(base, len, width, height, on_move);
            } else {
                SMN_TALLY(++decode_stats_.blocks_scalar);
                for (std::size_t i = 0; i < len; ++i) {
                    const auto a = base + i;
                    apply(a, direction_mask(xs_[a], ys_[a], width, height),
                          static_cast<unsigned>(block_.below(rng, 5)), on_move);
                }
            }
        }
    }

    /// Advances only the agents for which `should_move[a]` is true; the
    /// others stay frozen (Frog-model dynamics, Sec. 4).
    void step_subset(rng::Rng& rng, std::span<const std::uint8_t> should_move) {
        step_subset(rng, should_move, [](AgentId, grid::Point, grid::Point) {});
    }

    /// As step_subset, with the per-move hook of step_all.
    template <typename OnMove>
    void step_subset(rng::Rng& rng, std::span<const std::uint8_t> should_move,
                     OnMove&& on_move) {
        assert(should_move.size() == positions_.size());
        moving_.clear();
        for (std::size_t i = 0; i < should_move.size(); ++i) {
            if (should_move[i]) moving_.push_back(static_cast<std::int32_t>(i));
        }
        step_indices(
            rng, moving_.size(),
            [this](std::size_t i) { return static_cast<std::size_t>(moving_[i]); }, on_move);
    }

    /// Advances a single agent by one step.
    void step_one(AgentId a, rng::Rng& rng) noexcept {
        set_position(a, step(grid_, position(a), rng, kind_));
    }

private:
    /// Agents decoded per RNG block; 8 KiB of raw words + 4 KiB of draws,
    /// comfortably L1-resident.
    static constexpr std::size_t kBlockSize = 1024;

    void reserve(std::size_t k) {
        xs_.reserve(k);
        ys_.reserve(k);
        positions_.reserve(k);
    }

    void push_agent(grid::Point p) {
        xs_.push_back(p.x);
        ys_.push_back(p.y);
        positions_.push_back(p);
    }

    /// Batched step over `count` agents selected by `index_of` (identity
    /// for step_all, the moving-agent list for step_subset), in order.
    template <typename IndexFn, typename OnMove>
    void step_indices(rng::Rng& rng, std::size_t count, IndexFn&& index_of, OnMove&& on_move) {
        const auto width = grid_.width();
        const auto height = grid_.height();
        for (std::size_t base = 0; base < count; base += kBlockSize) {
            const std::size_t len = std::min(kBlockSize, count - base);
            block_.fill(rng, len);
            if (kind_ == WalkKind::kLazyPaper && decode_block(len)) {
                SMN_TALLY(++decode_stats_.blocks_decoded);
                // Common path: every buffered word decoded rejection-free.
                for (std::size_t i = 0; i < len; ++i) {
                    const auto a = index_of(base + i);
                    apply(a, direction_mask(xs_[a], ys_[a], width, height),
                          static_cast<unsigned>(draws_[i]), on_move);
                }
            } else {
                // Exact scalar path: ablation walks, and the ~2^-64 case of
                // a Lemire rejection inside the block. Consumes the same
                // buffered words through BlockRng, so the stream matches.
                SMN_TALLY(++decode_stats_.blocks_scalar);
                for (std::size_t i = 0; i < len; ++i) {
                    const auto a = index_of(base + i);
                    const auto mask = direction_mask(xs_[a], ys_[a], width, height);
                    const auto deg = static_cast<std::uint64_t>(std::popcount(mask));
                    std::uint64_t u = 0;
                    switch (kind_) {
                        case WalkKind::kLazyPaper: u = block_.below(rng, 5); break;
                        case WalkKind::kSimple: u = block_.below(rng, deg); break;
                        case WalkKind::kLazyHalf:
                            u = std::min<std::uint64_t>(block_.below(rng, 2 * deg), 4);
                            break;
                    }
                    apply(a, mask, static_cast<unsigned>(u), on_move);
                }
            }
        }
    }

    /// Pass 1 of the lazy-paper kernel: decode the block's raw words into
    /// draws_ (u ∈ [0,5)) with Lemire's multiply (walk/decode.hpp, SIMD
    /// when configured). Returns false — leaving draws_ unusable — iff any
    /// word would have been rejected.
    [[nodiscard]] bool decode_block(std::size_t len) {
        draws_.resize(len);
        return decode_draws5(block_.words().data(), len, draws_.data());
    }

    /// Pass 2 of the contiguous (step_all) lazy-paper kernel: apply 8
    /// decoded draws per vector to agents [base, base+len). Lane math
    /// mirrors apply()/direction_mask() exactly — cmpgt against the
    /// boundary coordinates builds the presence mask, a gather through
    /// kStepTablePacked turns mask*5+u into (dx, dy), and the AoS Point
    /// mirror is refreshed with an interleaved store. Only lanes whose
    /// packed delta is nonzero moved; they fire on_move in ascending lane
    /// order, which is exactly the scalar agent order.
    template <typename OnMove>
    void apply_block(std::size_t base, std::size_t len, grid::Coord width, grid::Coord height,
                     OnMove&& on_move) {
        namespace s = util::simd;
        static_assert(sizeof(grid::Point) == 2 * sizeof(grid::Coord));
        constexpr auto kLanes = static_cast<std::size_t>(s::kI32Lanes);
        const auto zero = s::I32x8::splat(0);
        const auto xmax = s::I32x8::splat(width - 1);
        const auto ymax = s::I32x8::splat(height - 1);
        const auto one = s::I32x8::splat(1);
        const auto two = s::I32x8::splat(2);
        const auto four = s::I32x8::splat(4);
        const auto eight = s::I32x8::splat(8);
        std::int32_t ox[kLanes];
        std::int32_t oy[kLanes];
        std::size_t i = 0;
        for (; i + kLanes <= len; i += kLanes) {
            const std::size_t a0 = base + i;
            const auto xv = s::I32x8::load(xs_.data() + a0);
            const auto yv = s::I32x8::load(ys_.data() + a0);
            // direction_mask(), lane-wise: x+1 < width ⇔ x < width−1.
            auto mask = s::bit_and(s::cmpgt(xv, zero), one);
            mask = s::bit_or(mask, s::bit_and(s::cmpgt(xmax, xv), two));
            mask = s::bit_or(mask, s::bit_and(s::cmpgt(yv, zero), four));
            mask = s::bit_or(mask, s::bit_and(s::cmpgt(ymax, yv), eight));
            const auto uv = s::I32x8::load(draws_.data() + i);
            const auto idx = s::add(s::add(s::shift_left<2>(mask), mask), uv);
            const auto delta = s::gather(kStepTablePacked.data(), idx);
            const auto dx = s::shift_right_arith<16>(s::shift_left<16>(delta));
            const auto dy = s::shift_right_arith<16>(delta);
            const auto nx = s::add(xv, dx);
            const auto ny = s::add(yv, dy);
            const unsigned moved = ~s::move_mask(s::cmpeq(delta, zero)) & 0xFFu;
            if (moved != 0) {
                xv.store(ox);
                yv.store(oy);
            }
            nx.store(xs_.data() + a0);
            ny.store(ys_.data() + a0);
            s::store_interleaved(reinterpret_cast<std::int32_t*>(positions_.data() + a0), nx,
                                 ny);
            for (unsigned bits = moved; bits != 0; bits &= bits - 1) {
                const auto lane = static_cast<std::size_t>(std::countr_zero(bits));
                const std::size_t a = a0 + lane;
                on_move(static_cast<AgentId>(a), grid::Point{ox[lane], oy[lane]},
                        positions_[a]);
            }
        }
        for (; i < len; ++i) {
            const std::size_t a = base + i;
            apply(a, direction_mask(xs_[a], ys_[a], width, height),
                  static_cast<unsigned>(draws_[i]), on_move);
        }
    }

    /// Pass 2: apply one decoded draw via the direction table.
    template <typename OnMove>
    void apply(std::size_t a, unsigned mask, unsigned u, OnMove&& on_move) {
        const auto d = kStepTable[mask * 5 + u];
        if ((d.dx | d.dy) == 0) return;
        const grid::Point from = positions_[a];
        xs_[a] = static_cast<grid::Coord>(from.x + d.dx);
        ys_[a] = static_cast<grid::Coord>(from.y + d.dy);
        positions_[a] = grid::Point{xs_[a], ys_[a]};
        on_move(static_cast<AgentId>(a), from, positions_[a]);
    }

    grid::Grid2D grid_;
    std::vector<grid::Coord> xs_;           ///< SoA x coordinates
    std::vector<grid::Coord> ys_;           ///< SoA y coordinates
    std::vector<grid::Point> positions_;    ///< coherent AoS mirror for span views
    WalkKind kind_;
    rng::BlockRng block_;                   ///< block-drawn raw RNG words
    std::vector<std::int32_t> draws_;       ///< decoded u per block slot (int32: SIMD lane width)
    std::vector<std::int32_t> moving_;      ///< scratch: step_subset selection
    DecodeStats decode_stats_;              ///< telemetry tallies (obs/tally.hpp)
};

}  // namespace smn::walk
