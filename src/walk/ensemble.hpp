// ensemble.hpp — a population of k agents walking synchronously on a grid.
//
// AgentEnsemble owns the positions of the k agents and advances them one
// synchronized step at a time, exactly as in the paper's model (Sec. 2):
// all agents move simultaneously and independently. Initial placement is
// uniform and independent over the grid nodes.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "rng/rng.hpp"
#include "walk/step.hpp"

namespace smn::walk {

/// Index of an agent in [0, k).
using AgentId = std::int32_t;

/// k agents on a Grid2D, stepped synchronously.
class AgentEnsemble {
public:
    /// Creates k agents placed uniformly and independently at random.
    /// Throws std::invalid_argument if k < 1.
    AgentEnsemble(const grid::Grid2D& grid, std::int32_t k, rng::Rng& rng,
                  WalkKind kind = WalkKind::kLazyPaper)
        : grid_{grid}, kind_{kind} {
        if (k < 1) throw std::invalid_argument("AgentEnsemble: k must be >= 1");
        positions_.reserve(static_cast<std::size_t>(k));
        for (std::int32_t i = 0; i < k; ++i) {
            positions_.push_back(random_node(grid, rng));
        }
    }

    /// Creates agents at caller-chosen positions (each must be on the grid).
    AgentEnsemble(const grid::Grid2D& grid, std::vector<grid::Point> positions,
                  WalkKind kind = WalkKind::kLazyPaper)
        : grid_{grid}, positions_{std::move(positions)}, kind_{kind} {
        if (positions_.empty()) {
            throw std::invalid_argument("AgentEnsemble: need at least one agent");
        }
        for (const auto& p : positions_) {
            if (!grid_.contains(p)) {
                throw std::invalid_argument("AgentEnsemble: initial position off-grid");
            }
        }
    }

    /// Uniformly random grid node.
    [[nodiscard]] static grid::Point random_node(const grid::Grid2D& grid, rng::Rng& rng) {
        const auto id = static_cast<grid::NodeId>(rng.below(static_cast<std::uint64_t>(grid.size())));
        return grid.point_of(id);
    }

    /// Number of agents k.
    [[nodiscard]] std::int32_t count() const noexcept {
        return static_cast<std::int32_t>(positions_.size());
    }

    [[nodiscard]] const grid::Grid2D& grid() const noexcept { return grid_; }
    [[nodiscard]] WalkKind kind() const noexcept { return kind_; }

    [[nodiscard]] grid::Point position(AgentId a) const noexcept {
        assert(a >= 0 && a < count());
        return positions_[static_cast<std::size_t>(a)];
    }

    /// Read-only view of all positions (index = agent id).
    [[nodiscard]] std::span<const grid::Point> positions() const noexcept { return positions_; }

    /// Moves one agent (used by models where only a subset moves, e.g. the
    /// Frog model).
    void set_position(AgentId a, grid::Point p) noexcept {
        assert(a >= 0 && a < count() && grid_.contains(p));
        positions_[static_cast<std::size_t>(a)] = p;
    }

    /// Advances every agent by one synchronized step.
    void step_all(rng::Rng& rng) noexcept {
        for (auto& p : positions_) p = step(grid_, p, rng, kind_);
    }

    /// Advances only the agents for which `should_move[a]` is true; the
    /// others stay frozen (Frog-model dynamics, Sec. 4).
    void step_subset(rng::Rng& rng, std::span<const std::uint8_t> should_move) noexcept {
        assert(should_move.size() == positions_.size());
        for (std::size_t i = 0; i < positions_.size(); ++i) {
            if (should_move[i]) positions_[i] = step(grid_, positions_[i], rng, kind_);
        }
    }

    /// Advances a single agent by one step.
    void step_one(AgentId a, rng::Rng& rng) noexcept {
        auto& p = positions_[static_cast<std::size_t>(a)];
        p = step(grid_, p, rng, kind_);
    }

private:
    grid::Grid2D grid_;
    std::vector<grid::Point> positions_;
    WalkKind kind_;
};

}  // namespace smn::walk
