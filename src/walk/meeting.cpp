#include "walk/meeting.hpp"

namespace smn::walk {

HitResult hit_within(const grid::Grid2D& grid, grid::Point start, grid::Point target,
                     std::int64_t max_steps, rng::Rng& rng, WalkKind kind) {
    if (start == target) return HitResult{.hit = true, .hit_time = 0};
    grid::Point p = start;
    for (std::int64_t t = 1; t <= max_steps; ++t) {
        p = step(grid, p, rng, kind);
        if (p == target) return HitResult{.hit = true, .hit_time = t};
    }
    return HitResult{};
}

MeetResult meet_within(const grid::Grid2D& grid, grid::Point a0, grid::Point b0,
                       std::int64_t max_steps, rng::Rng& rng, WalkKind kind) {
    const std::int64_t d = grid::manhattan(a0, b0);
    const auto in_lens = [&](grid::Point x) {
        return grid::manhattan(x, a0) <= d && grid::manhattan(x, b0) <= d;
    };
    if (a0 == b0) {
        return MeetResult{.met = true, .met_in_lens = true, .meet_time = 0, .meet_node = a0};
    }
    grid::Point a = a0;
    grid::Point b = b0;
    for (std::int64_t t = 1; t <= max_steps; ++t) {
        a = step(grid, a, rng, kind);
        b = step(grid, b, rng, kind);
        if (a == b) {
            return MeetResult{
                .met = true, .met_in_lens = in_lens(a), .meet_time = t, .meet_node = a};
        }
    }
    return MeetResult{};
}

}  // namespace smn::walk
