// meeting_time.hpp — first-meeting times of two independent walks.
//
// Sec. 1.1 discusses the general infection bound of Dimitriou et al. [10],
// O(t* log k), where t* is the MAXIMUM over starting positions of the
// expected first-meeting time of two walks — O(n log n) on the grid by
// Aldous–Fill [1]. These helpers measure first-meeting times directly:
// bench_meeting_time (E21) shows t̄(n) ~ n log n and locates the worst
// starting geometry (opposite corners).
#pragma once

#include <cstdint>
#include <optional>

#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "rng/rng.hpp"
#include "walk/step.hpp"

namespace smn::walk {

/// First time two walks from a0/b0 co-locate, or nullopt if `cap` elapses.
/// Co-location at t = 0 returns 0.
[[nodiscard]] inline std::optional<std::int64_t> first_meeting_time(
    const grid::Grid2D& grid, grid::Point a0, grid::Point b0, std::int64_t cap, rng::Rng& rng,
    WalkKind kind = WalkKind::kLazyPaper) {
    if (a0 == b0) return 0;
    grid::Point a = a0;
    grid::Point b = b0;
    for (std::int64_t t = 1; t <= cap; ++t) {
        a = step(grid, a, rng, kind);
        b = step(grid, b, rng, kind);
        if (a == b) return t;
    }
    return std::nullopt;
}

/// Mean first-meeting time over `reps` trials from fixed starts; trials
/// that exceed `cap` contribute `cap` (so the estimate is a lower bound
/// when truncation occurs — callers should pick cap ≫ n log n).
[[nodiscard]] inline double mean_meeting_time(const grid::Grid2D& grid, grid::Point a0,
                                              grid::Point b0, std::int64_t cap, int reps,
                                              rng::Rng& rng,
                                              WalkKind kind = WalkKind::kLazyPaper) {
    double total = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        total += static_cast<double>(first_meeting_time(grid, a0, b0, cap, rng, kind).value_or(cap));
    }
    return total / reps;
}

}  // namespace smn::walk
