// simd.hpp — fixed-width portable SIMD lanes for the hot kernels.
//
// The walk decode/apply kernels (walk/ensemble.hpp, walk/decode.hpp) and
// the in-range distance filter of the pair scan (graph/range_filter.hpp)
// are written once against the two wrapper types below and compiled
// against one of three backends, selected at CONFIGURE time (never at
// runtime — a runtime dispatch would put an unpredictable branch in loops
// that run billions of times):
//
//  * AVX2   — x86-64 with -mavx2 (cmake/Simd.cmake probes the compiler and
//             adds the flag; the binary then requires an AVX2 host).
//  * NEON   — AArch64 (no extra flags; NEON is baseline on arm64).
//  * scalar — everything else, or any build configured with
//             -DSMN_DISABLE_SIMD=ON. Plain loops over small arrays; the
//             force-scalar CI leg runs the full test suite against it.
//
// Lane widths are fixed at 8×int32 / 4×uint64 on every backend (the NEON
// backend pairs two 128-bit registers) so kernel code never branches on
// width. Masks are carried as lane vectors (all-ones per true lane);
// `move_mask` compresses the sign bits into an 8-bit integer whose bit i
// corresponds to lane i — survivors are then iterated in ASCENDING lane
// order, which is what keeps vectorized scans order-identical to their
// scalar references (the determinism contract).
//
// Determinism note: every operation here is exact integer arithmetic —
// identical results on every backend by construction. There is no
// floating point, no FMA, no reassociation. The SIMD-vs-scalar golden
// tests (tests/determinism_test.cpp, force-scalar CI leg) enforce this
// end to end.
#pragma once

#include <cstdint>

#if !defined(SMN_DISABLE_SIMD) && defined(__AVX2__)
#define SMN_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(SMN_DISABLE_SIMD) && defined(__ARM_NEON) && defined(__aarch64__)
#define SMN_SIMD_NEON 1
#include <arm_neon.h>
#else
#define SMN_SIMD_SCALAR 1
#endif

namespace smn::util::simd {

/// Lanes per I32x8 / U64x4 — fixed on every backend.
inline constexpr int kI32Lanes = 8;
inline constexpr int kU64Lanes = 4;

/// Name of the configure-time backend (for --version strings and tests).
[[nodiscard]] constexpr const char* backend_name() noexcept {
#if defined(SMN_SIMD_AVX2)
    return "avx2";
#elif defined(SMN_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

#if defined(SMN_SIMD_AVX2)

// ------------------------------------------------------------- AVX2 backend

/// Eight int32 lanes.
struct I32x8 {
    __m256i v;

    [[nodiscard]] static I32x8 load(const std::int32_t* p) noexcept {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
    }
    [[nodiscard]] static I32x8 splat(std::int32_t x) noexcept { return {_mm256_set1_epi32(x)}; }
    void store(std::int32_t* p) const noexcept {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
};

[[nodiscard]] inline I32x8 add(I32x8 a, I32x8 b) noexcept {
    return {_mm256_add_epi32(a.v, b.v)};
}
[[nodiscard]] inline I32x8 sub(I32x8 a, I32x8 b) noexcept {
    return {_mm256_sub_epi32(a.v, b.v)};
}
[[nodiscard]] inline I32x8 abs(I32x8 a) noexcept { return {_mm256_abs_epi32(a.v)}; }
[[nodiscard]] inline I32x8 max(I32x8 a, I32x8 b) noexcept {
    return {_mm256_max_epi32(a.v, b.v)};
}
[[nodiscard]] inline I32x8 bit_and(I32x8 a, I32x8 b) noexcept {
    return {_mm256_and_si256(a.v, b.v)};
}
[[nodiscard]] inline I32x8 bit_or(I32x8 a, I32x8 b) noexcept {
    return {_mm256_or_si256(a.v, b.v)};
}
/// Per-lane a > b (signed): all-ones lane when true.
[[nodiscard]] inline I32x8 cmpgt(I32x8 a, I32x8 b) noexcept {
    return {_mm256_cmpgt_epi32(a.v, b.v)};
}
[[nodiscard]] inline I32x8 cmpeq(I32x8 a, I32x8 b) noexcept {
    return {_mm256_cmpeq_epi32(a.v, b.v)};
}
template <int N>
[[nodiscard]] inline I32x8 shift_left(I32x8 a) noexcept {
    return {_mm256_slli_epi32(a.v, N)};
}
template <int N>
[[nodiscard]] inline I32x8 shift_right_arith(I32x8 a) noexcept {
    return {_mm256_srai_epi32(a.v, N)};
}
/// table[idx[lane]] for each lane (table entries int32).
[[nodiscard]] inline I32x8 gather(const std::int32_t* table, I32x8 idx) noexcept {
    return {_mm256_i32gather_epi32(table, idx.v, 4)};
}
/// Bit i of the result = sign bit of lane i.
[[nodiscard]] inline unsigned move_mask(I32x8 a) noexcept {
    return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(a.v)));
}
/// Stores the 16 values a0,b0,a1,b1,…,a7,b7 at dst (AoS pair mirror).
inline void store_interleaved(std::int32_t* dst, I32x8 a, I32x8 b) noexcept {
    const __m256i lo = _mm256_unpacklo_epi32(a.v, b.v);  // a0 b0 a1 b1 | a4 b4 a5 b5
    const __m256i hi = _mm256_unpackhi_epi32(a.v, b.v);  // a2 b2 a3 b3 | a6 b6 a7 b7
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
}

/// Four uint64 lanes.
struct U64x4 {
    __m256i v;

    [[nodiscard]] static U64x4 load(const std::uint64_t* p) noexcept {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
    }
    [[nodiscard]] static U64x4 splat(std::uint64_t x) noexcept {
        return {_mm256_set1_epi64x(static_cast<long long>(x))};
    }
};

[[nodiscard]] inline U64x4 add(U64x4 a, U64x4 b) noexcept {
    return {_mm256_add_epi64(a.v, b.v)};
}
[[nodiscard]] inline U64x4 bit_and(U64x4 a, U64x4 b) noexcept {
    return {_mm256_and_si256(a.v, b.v)};
}
[[nodiscard]] inline U64x4 bit_or(U64x4 a, U64x4 b) noexcept {
    return {_mm256_or_si256(a.v, b.v)};
}
[[nodiscard]] inline U64x4 cmpeq(U64x4 a, U64x4 b) noexcept {
    return {_mm256_cmpeq_epi64(a.v, b.v)};
}
template <int N>
[[nodiscard]] inline U64x4 shift_left(U64x4 a) noexcept {
    return {_mm256_slli_epi64(a.v, N)};
}
template <int N>
[[nodiscard]] inline U64x4 shift_right(U64x4 a) noexcept {
    return {_mm256_srli_epi64(a.v, N)};
}
/// True iff any lane has any bit set.
[[nodiscard]] inline bool any(U64x4 a) noexcept {
    return _mm256_testz_si256(a.v, a.v) == 0;
}
/// Stores the low 32 bits of each lane as 4 consecutive int32 at dst.
inline void store_narrow(std::int32_t* dst, U64x4 a) noexcept {
    const __m256i shuffled =
        _mm256_permutevar8x32_epi32(a.v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm256_castsi256_si128(shuffled));
}

#elif defined(SMN_SIMD_NEON)

// ------------------------------------------------------------- NEON backend
// 128-bit registers paired to keep the 8×int32 / 4×uint64 shape.

struct I32x8 {
    int32x4_t lo;
    int32x4_t hi;

    [[nodiscard]] static I32x8 load(const std::int32_t* p) noexcept {
        return {vld1q_s32(p), vld1q_s32(p + 4)};
    }
    [[nodiscard]] static I32x8 splat(std::int32_t x) noexcept {
        return {vdupq_n_s32(x), vdupq_n_s32(x)};
    }
    void store(std::int32_t* p) const noexcept {
        vst1q_s32(p, lo);
        vst1q_s32(p + 4, hi);
    }
};

[[nodiscard]] inline I32x8 add(I32x8 a, I32x8 b) noexcept {
    return {vaddq_s32(a.lo, b.lo), vaddq_s32(a.hi, b.hi)};
}
[[nodiscard]] inline I32x8 sub(I32x8 a, I32x8 b) noexcept {
    return {vsubq_s32(a.lo, b.lo), vsubq_s32(a.hi, b.hi)};
}
[[nodiscard]] inline I32x8 abs(I32x8 a) noexcept { return {vabsq_s32(a.lo), vabsq_s32(a.hi)}; }
[[nodiscard]] inline I32x8 max(I32x8 a, I32x8 b) noexcept {
    return {vmaxq_s32(a.lo, b.lo), vmaxq_s32(a.hi, b.hi)};
}
[[nodiscard]] inline I32x8 bit_and(I32x8 a, I32x8 b) noexcept {
    return {vandq_s32(a.lo, b.lo), vandq_s32(a.hi, b.hi)};
}
[[nodiscard]] inline I32x8 bit_or(I32x8 a, I32x8 b) noexcept {
    return {vorrq_s32(a.lo, b.lo), vorrq_s32(a.hi, b.hi)};
}
[[nodiscard]] inline I32x8 cmpgt(I32x8 a, I32x8 b) noexcept {
    return {vreinterpretq_s32_u32(vcgtq_s32(a.lo, b.lo)),
            vreinterpretq_s32_u32(vcgtq_s32(a.hi, b.hi))};
}
[[nodiscard]] inline I32x8 cmpeq(I32x8 a, I32x8 b) noexcept {
    return {vreinterpretq_s32_u32(vceqq_s32(a.lo, b.lo)),
            vreinterpretq_s32_u32(vceqq_s32(a.hi, b.hi))};
}
template <int N>
[[nodiscard]] inline I32x8 shift_left(I32x8 a) noexcept {
    return {vshlq_n_s32(a.lo, N), vshlq_n_s32(a.hi, N)};
}
template <int N>
[[nodiscard]] inline I32x8 shift_right_arith(I32x8 a) noexcept {
    return {vshrq_n_s32(a.lo, N), vshrq_n_s32(a.hi, N)};
}
[[nodiscard]] inline I32x8 gather(const std::int32_t* table, I32x8 idx) noexcept {
    std::int32_t is[8];
    idx.store(is);
    const std::int32_t g[8] = {table[is[0]], table[is[1]], table[is[2]], table[is[3]],
                               table[is[4]], table[is[5]], table[is[6]], table[is[7]]};
    return I32x8::load(g);
}
[[nodiscard]] inline unsigned move_mask(I32x8 a) noexcept {
    // Sign bit of each lane → bit i. vaddv (AArch64) sums the per-lane
    // 0/1<<i contributions.
    const int32x4_t shifts_lo = {0, 1, 2, 3};
    const int32x4_t shifts_hi = {4, 5, 6, 7};
    const uint32x4_t ones = vdupq_n_u32(1);
    const uint32x4_t sl = vandq_u32(vshrq_n_u32(vreinterpretq_u32_s32(a.lo), 31), ones);
    const uint32x4_t sh = vandq_u32(vshrq_n_u32(vreinterpretq_u32_s32(a.hi), 31), ones);
    return vaddvq_u32(vshlq_u32(sl, shifts_lo)) + vaddvq_u32(vshlq_u32(sh, shifts_hi));
}
inline void store_interleaved(std::int32_t* dst, I32x8 a, I32x8 b) noexcept {
    int32x4x2_t lo{{a.lo, b.lo}};
    int32x4x2_t hi{{a.hi, b.hi}};
    vst2q_s32(dst, lo);
    vst2q_s32(dst + 8, hi);
}

struct U64x4 {
    uint64x2_t lo;
    uint64x2_t hi;

    [[nodiscard]] static U64x4 load(const std::uint64_t* p) noexcept {
        return {vld1q_u64(p), vld1q_u64(p + 2)};
    }
    [[nodiscard]] static U64x4 splat(std::uint64_t x) noexcept {
        return {vdupq_n_u64(x), vdupq_n_u64(x)};
    }
};

[[nodiscard]] inline U64x4 add(U64x4 a, U64x4 b) noexcept {
    return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
}
[[nodiscard]] inline U64x4 bit_and(U64x4 a, U64x4 b) noexcept {
    return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
[[nodiscard]] inline U64x4 bit_or(U64x4 a, U64x4 b) noexcept {
    return {vorrq_u64(a.lo, b.lo), vorrq_u64(a.hi, b.hi)};
}
[[nodiscard]] inline U64x4 cmpeq(U64x4 a, U64x4 b) noexcept {
    return {vceqq_u64(a.lo, b.lo), vceqq_u64(a.hi, b.hi)};
}
template <int N>
[[nodiscard]] inline U64x4 shift_left(U64x4 a) noexcept {
    return {vshlq_n_u64(a.lo, N), vshlq_n_u64(a.hi, N)};
}
template <int N>
[[nodiscard]] inline U64x4 shift_right(U64x4 a) noexcept {
    return {vshrq_n_u64(a.lo, N), vshrq_n_u64(a.hi, N)};
}
[[nodiscard]] inline bool any(U64x4 a) noexcept {
    return (vgetq_lane_u64(vorrq_u64(a.lo, a.hi), 0) |
            vgetq_lane_u64(vorrq_u64(a.lo, a.hi), 1)) != 0;
}
inline void store_narrow(std::int32_t* dst, U64x4 a) noexcept {
    const uint32x4_t narrow = vcombine_u32(vmovn_u64(a.lo), vmovn_u64(a.hi));
    vst1q_s32(dst, vreinterpretq_s32_u32(narrow));
}

#else

// ----------------------------------------------------------- scalar backend
// Plain loops; gcc/clang auto-vectorize most of them at -O2, and the
// force-scalar CI leg keeps this path green under ASan/UBSan.

struct I32x8 {
    std::int32_t l[8];

    [[nodiscard]] static I32x8 load(const std::int32_t* p) noexcept {
        I32x8 r;
        for (int i = 0; i < 8; ++i) r.l[i] = p[i];
        return r;
    }
    [[nodiscard]] static I32x8 splat(std::int32_t x) noexcept {
        I32x8 r;
        for (auto& v : r.l) v = x;
        return r;
    }
    void store(std::int32_t* p) const noexcept {
        for (int i = 0; i < 8; ++i) p[i] = l[i];
    }
};

namespace detail {
template <typename Fn>
[[nodiscard]] inline I32x8 map8(I32x8 a, I32x8 b, Fn&& fn) noexcept {
    I32x8 r;
    for (int i = 0; i < 8; ++i) r.l[i] = fn(a.l[i], b.l[i]);
    return r;
}
}  // namespace detail

[[nodiscard]] inline I32x8 add(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) {
        return static_cast<std::int32_t>(static_cast<std::uint32_t>(x) +
                                         static_cast<std::uint32_t>(y));
    });
}
[[nodiscard]] inline I32x8 sub(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) {
        return static_cast<std::int32_t>(static_cast<std::uint32_t>(x) -
                                         static_cast<std::uint32_t>(y));
    });
}
[[nodiscard]] inline I32x8 abs(I32x8 a) noexcept {
    I32x8 r;
    for (int i = 0; i < 8; ++i) r.l[i] = a.l[i] < 0 ? -a.l[i] : a.l[i];
    return r;
}
[[nodiscard]] inline I32x8 max(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) { return x > y ? x : y; });
}
[[nodiscard]] inline I32x8 bit_and(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) { return x & y; });
}
[[nodiscard]] inline I32x8 bit_or(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) { return x | y; });
}
[[nodiscard]] inline I32x8 cmpgt(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) { return x > y ? -1 : 0; });
}
[[nodiscard]] inline I32x8 cmpeq(I32x8 a, I32x8 b) noexcept {
    return detail::map8(a, b, [](std::int32_t x, std::int32_t y) { return x == y ? -1 : 0; });
}
template <int N>
[[nodiscard]] inline I32x8 shift_left(I32x8 a) noexcept {
    I32x8 r;
    for (int i = 0; i < 8; ++i) {
        r.l[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.l[i]) << N);
    }
    return r;
}
template <int N>
[[nodiscard]] inline I32x8 shift_right_arith(I32x8 a) noexcept {
    I32x8 r;
    for (int i = 0; i < 8; ++i) r.l[i] = a.l[i] >> N;
    return r;
}
[[nodiscard]] inline I32x8 gather(const std::int32_t* table, I32x8 idx) noexcept {
    I32x8 r;
    for (int i = 0; i < 8; ++i) r.l[i] = table[idx.l[i]];
    return r;
}
[[nodiscard]] inline unsigned move_mask(I32x8 a) noexcept {
    unsigned bits = 0;
    for (int i = 0; i < 8; ++i) {
        bits |= (static_cast<std::uint32_t>(a.l[i]) >> 31) << i;
    }
    return bits;
}
inline void store_interleaved(std::int32_t* dst, I32x8 a, I32x8 b) noexcept {
    for (int i = 0; i < 8; ++i) {
        dst[2 * i] = a.l[i];
        dst[2 * i + 1] = b.l[i];
    }
}

struct U64x4 {
    std::uint64_t l[4];

    [[nodiscard]] static U64x4 load(const std::uint64_t* p) noexcept {
        return {{p[0], p[1], p[2], p[3]}};
    }
    [[nodiscard]] static U64x4 splat(std::uint64_t x) noexcept { return {{x, x, x, x}}; }
};

[[nodiscard]] inline U64x4 add(U64x4 a, U64x4 b) noexcept {
    return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2], a.l[3] + b.l[3]}};
}
[[nodiscard]] inline U64x4 bit_and(U64x4 a, U64x4 b) noexcept {
    return {{a.l[0] & b.l[0], a.l[1] & b.l[1], a.l[2] & b.l[2], a.l[3] & b.l[3]}};
}
[[nodiscard]] inline U64x4 bit_or(U64x4 a, U64x4 b) noexcept {
    return {{a.l[0] | b.l[0], a.l[1] | b.l[1], a.l[2] | b.l[2], a.l[3] | b.l[3]}};
}
[[nodiscard]] inline U64x4 cmpeq(U64x4 a, U64x4 b) noexcept {
    U64x4 r;
    for (int i = 0; i < 4; ++i) r.l[i] = a.l[i] == b.l[i] ? ~std::uint64_t{0} : 0;
    return r;
}
template <int N>
[[nodiscard]] inline U64x4 shift_left(U64x4 a) noexcept {
    return {{a.l[0] << N, a.l[1] << N, a.l[2] << N, a.l[3] << N}};
}
template <int N>
[[nodiscard]] inline U64x4 shift_right(U64x4 a) noexcept {
    return {{a.l[0] >> N, a.l[1] >> N, a.l[2] >> N, a.l[3] >> N}};
}
[[nodiscard]] inline bool any(U64x4 a) noexcept {
    return (a.l[0] | a.l[1] | a.l[2] | a.l[3]) != 0;
}
inline void store_narrow(std::int32_t* dst, U64x4 a) noexcept {
    for (int i = 0; i < 4; ++i) dst[i] = static_cast<std::int32_t>(a.l[i] & 0xFFFFFFFFu);
}

#endif

}  // namespace smn::util::simd
