// worker_pool.hpp — a persistent in-process worker pool for per-step
// parallel kernels.
//
// sim::run_replications parallelizes *across* replications; WorkerPool
// parallelizes *inside* one step (the visibility graph's sharded pair
// scan). Spawning threads per step would dominate the step cost, so the
// pool keeps its workers alive between run() calls and hands out shard
// indices from a shared queue — any worker may take any shard, which is
// safe because shard outputs are written to per-shard buffers and merged
// by the caller in fixed shard order (that merge, not the scheduling, is
// what keeps results deterministic). Shards are coarse (a handful per
// run), so handing them out under the mutex costs nothing and keeps the
// synchronization story trivial.
//
// The per-step thread count comes from SMN_STEP_THREADS (default 1 = no
// pool, no threads, zero overhead). It is deliberately separate from
// SMN_THREADS: replication-level parallelism multiplies with step-level
// parallelism, and the default keeps the product equal to the replication
// worker count.
#pragma once

#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smn::util {

/// Number of intra-step worker threads: the SMN_STEP_THREADS environment
/// variable clamped to [1, 64]; 1 (fully serial) when unset or invalid.
[[nodiscard]] inline int step_threads() noexcept {
    if (const char* env = std::getenv("SMN_STEP_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1 && parsed <= 64) {
            return static_cast<int>(parsed);
        }
    }
    return 1;
}

/// Persistent pool of `workers` threads (including the caller, which
/// participates in run()). run(shards, task) invokes task(shard, worker)
/// for every shard in [0, shards), each exactly once, and returns when all
/// are done. `worker` is a stable id in [0, workers) identifying which
/// thread ran the shard — use it to index per-thread scratch.
class WorkerPool {
public:
    explicit WorkerPool(int workers) : workers_{workers < 1 ? 1 : workers} {
        threads_.reserve(static_cast<std::size_t>(workers_ - 1));
        for (int w = 1; w < workers_; ++w) {
            threads_.emplace_back([this, w] { worker_loop(w); });
        }
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    ~WorkerPool() {
        {
            std::lock_guard<std::mutex> lock{mutex_};
            stop_ = true;
        }
        wake_.notify_all();
        for (auto& t : threads_) t.join();
    }

    [[nodiscard]] int workers() const noexcept { return workers_; }

    /// Runs task(shard, worker) for every shard; blocks until all done.
    /// The calling thread participates as worker 0. Not reentrant.
    void run(int shards, const std::function<void(int, int)>& task) {
        if (shards <= 0) return;
        if (workers_ == 1) {
            for (int s = 0; s < shards; ++s) task(s, 0);
            return;
        }
        {
            std::lock_guard<std::mutex> lock{mutex_};
            task_ = &task;
            next_shard_ = 0;
            shards_ = shards;
            remaining_ = shards;
        }
        wake_.notify_all();
        drain(0);
        std::unique_lock<std::mutex> lock{mutex_};
        done_.wait(lock, [this] { return remaining_ == 0; });
        task_ = nullptr;
    }

private:
    /// Pops shards until none are left; runs each outside the mutex.
    void drain(int worker) {
        std::unique_lock<std::mutex> lock{mutex_};
        while (next_shard_ < shards_) {
            const int s = next_shard_++;
            const auto* task = task_;
            lock.unlock();
            (*task)(s, worker);
            lock.lock();
            if (--remaining_ == 0) done_.notify_all();
        }
    }

    void worker_loop(int worker) {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock{mutex_};
                wake_.wait(lock, [this] { return stop_ || next_shard_ < shards_; });
                if (stop_) return;
            }
            drain(worker);
        }
    }

    int workers_;
    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(int, int)>* task_{nullptr};
    int next_shard_{0};
    int shards_{0};
    int remaining_{0};
    bool stop_{false};
};

}  // namespace smn::util
