// worker_pool.hpp — a persistent in-process worker pool with dynamic
// shard scheduling.
//
// The pool serves two distinct parallelism layers:
//   - *inside* one simulation step: the visibility graph's sharded pair
//     scan (a handful of coarse shards per run), and
//   - *across* replications: sim::ReplicationPool (sim/runner.hpp) hands
//     out replication indices as shards, one replication per shard.
// Spawning threads per run would dominate both workloads, so the pool
// keeps its workers alive between run() calls and hands out shard indices
// from a shared queue — any worker may take any shard (dynamic
// scheduling), which is safe because shard outputs are written to
// per-shard buffers and either merged by the caller in fixed shard order
// (the scan) or already index-addressed (replications). That merge-by-
// index, not the scheduling, is what keeps results deterministic; a slow
// shard therefore never strands work behind a static stride.
//
// Exceptions thrown by a shard are captured inside the pool: the first
// one cancels the shards not yet handed out (in-flight shards finish) and
// is rethrown on the caller's thread once every worker has drained. A
// throwing task body is thus an ordinary error, not std::terminate.
//
// The per-step thread count comes from SMN_STEP_THREADS (default 1 = no
// pool, no threads, zero overhead). It is deliberately separate from
// SMN_THREADS: replication-level parallelism multiplies with step-level
// parallelism, and sim::replication_workers() divides the replication
// worker count by step_threads() so the product never oversubscribes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/tally.hpp"

namespace smn::util {

/// Number of intra-step worker threads: the SMN_STEP_THREADS environment
/// variable clamped to [1, 64]; 1 (fully serial) when unset or invalid.
[[nodiscard]] inline int step_threads() noexcept {
    if (const char* env = std::getenv("SMN_STEP_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1 && parsed <= 64) {
            return static_cast<int>(parsed);
        }
    }
    return 1;
}

/// Persistent pool of `workers` threads (including the caller, which
/// participates in run()). run(shards, task) invokes task(shard, worker)
/// for every shard in [0, shards) — each at most once; an exception
/// cancels the rest — and returns when all handed-out shards are done.
/// `worker` is a stable id in [0, workers) identifying which thread ran
/// the shard — use it to index per-thread scratch.
class WorkerPool {
public:
    /// Per-worker telemetry (zero under -DSMN_DISABLE_OBS): shards run and
    /// wall-clock spent inside task bodies, cumulative over the pool's
    /// lifetime.
    struct WorkerStats {
        std::int64_t shards{0};
        double busy_seconds{0.0};
    };

    explicit WorkerPool(int workers) : workers_{workers < 1 ? 1 : workers} {
        stats_.resize(static_cast<std::size_t>(workers_));
        threads_.reserve(static_cast<std::size_t>(workers_ - 1));
        for (int w = 1; w < workers_; ++w) {
            threads_.emplace_back([this, w] { worker_loop(w); });
        }
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    ~WorkerPool() {
        {
            std::lock_guard<std::mutex> lock{mutex_};
            stop_ = true;
        }
        wake_.notify_all();
        for (auto& t : threads_) t.join();
    }

    [[nodiscard]] int workers() const noexcept { return workers_; }

    /// Snapshot of the per-worker telemetry. Call between runs (it takes
    /// the pool mutex, which drain() holds around its bookkeeping).
    [[nodiscard]] std::vector<WorkerStats> worker_stats() {
        std::lock_guard<std::mutex> lock{mutex_};
        return stats_;
    }

    /// Sum of busy_seconds over all workers.
    [[nodiscard]] double busy_seconds_total() {
        std::lock_guard<std::mutex> lock{mutex_};
        double total = 0.0;
        for (const auto& s : stats_) total += s.busy_seconds;
        return total;
    }

    /// Grows the pool to at least `workers` threads. Must not overlap a
    /// run() (callers serialize externally — sim::ReplicationPool holds
    /// its dispatch lock across ensure_workers + run).
    void ensure_workers(int workers) {
        if (workers <= workers_) return;
        {
            // Workers park on `wake_` between runs; taking the lock here
            // orders the growth against their predicate reads.
            std::lock_guard<std::mutex> lock{mutex_};
            stats_.resize(static_cast<std::size_t>(workers));
            for (int w = workers_; w < workers; ++w) {
                threads_.emplace_back([this, w] { worker_loop(w); });
            }
            workers_ = workers;
        }
    }

    /// Runs task(shard, worker) for shards [0, shards); blocks until all
    /// handed-out shards are done. The calling thread participates as
    /// worker 0. At most max(1, max_workers) workers take part (0 = all).
    /// The first exception a shard throws cancels the shards not yet
    /// handed out and is rethrown here. Not reentrant.
    void run(int shards, const std::function<void(int, int)>& task, int max_workers = 0) {
        if (shards <= 0) return;
        int active =
            max_workers <= 0 ? workers_ : (max_workers < workers_ ? max_workers : workers_);
        if (active > shards) active = shards;
        if (active <= 1) {
            const auto begin = obs::kEnabled ? std::chrono::steady_clock::now()
                                             : std::chrono::steady_clock::time_point{};
            for (int s = 0; s < shards; ++s) task(s, 0);  // exceptions propagate directly
            if constexpr (obs::kEnabled) {
                std::lock_guard<std::mutex> lock{mutex_};
                stats_[0].shards += shards;
                stats_[0].busy_seconds +=
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                        .count();
            }
            return;
        }
        {
            std::lock_guard<std::mutex> lock{mutex_};
            task_ = &task;
            next_shard_ = 0;
            shards_ = shards;
            active_ = active;
            error_ = nullptr;
        }
        wake_.notify_all();
        drain(0);
        std::exception_ptr error;
        {
            std::unique_lock<std::mutex> lock{mutex_};
            done_.wait(lock, [this] { return next_shard_ >= shards_ && in_flight_ == 0; });
            task_ = nullptr;
            shards_ = 0;  // parks workers until the next run
            error = error_;
            error_ = nullptr;
        }
        if (error) std::rethrow_exception(error);
    }

private:
    /// Pops shards until none are left (or an exception cancelled the
    /// run); runs each outside the mutex.
    void drain(int worker) {
        std::unique_lock<std::mutex> lock{mutex_};
        while (worker < active_ && next_shard_ < shards_) {
            const int s = next_shard_++;
            ++in_flight_;
            const auto* task = task_;
            lock.unlock();
            const auto begin = obs::kEnabled ? std::chrono::steady_clock::now()
                                             : std::chrono::steady_clock::time_point{};
            std::exception_ptr error;
            try {
                (*task)(s, worker);
            } catch (...) {
                error = std::current_exception();
            }
            const auto busy = obs::kEnabled ? std::chrono::duration<double>(
                                                  std::chrono::steady_clock::now() - begin)
                                                  .count()
                                            : 0.0;
            lock.lock();
            if constexpr (obs::kEnabled) {
                auto& ws = stats_[static_cast<std::size_t>(worker)];
                ++ws.shards;
                ws.busy_seconds += busy;
            }
            --in_flight_;
            if (error) {
                if (!error_) error_ = error;
                next_shard_ = shards_;  // cancel shards not yet handed out
            }
            if (next_shard_ >= shards_ && in_flight_ == 0) done_.notify_all();
        }
    }

    void worker_loop(int worker) {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock{mutex_};
                wake_.wait(lock, [this, worker] {
                    return stop_ || (worker < active_ && next_shard_ < shards_);
                });
                if (stop_) return;
            }
            drain(worker);
        }
    }

    int workers_;
    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(int, int)>* task_{nullptr};
    int next_shard_{0};
    int shards_{0};
    int active_{0};
    int in_flight_{0};
    std::exception_ptr error_;
    bool stop_{false};
    std::vector<WorkerStats> stats_;  ///< per-worker telemetry, mutex-guarded
};

}  // namespace smn::util
