// failpoint.hpp — deterministic fault injection for crash/retry testing.
//
// A fail point is a named site in the code that can be made to fail on
// demand: the crash-safety layer (unit retry in exp::run_points, atomic
// snapshot writes, the sweep journal) is only trustworthy if its failure
// paths are exercised, and real crashes are neither portable nor
// reproducible. Sites are configured through the SMN_FAILPOINTS
// environment variable (or FailPoints::configure in tests):
//
//   SMN_FAILPOINTS="unit_body=0.05@7,snapshot_write=1@0:abort"
//
// Each entry is name=probability@seed[:action]. The decision for the
// i-th evaluation of a site is a pure function of (seed, i) — NOT of
// wall clock, thread identity, or scheduling — so a failing run replays
// identically, which is what lets the crash-resume tests assert
// byte-identical recovery. Actions: "throw" (default, raises
// util::InjectedFault) and "abort" (std::abort, for kill-style crash
// legs). Sites that want softer semantics (truncate a write, drop a
// record) call the query form failpoint_fires() and act themselves.
//
// The facility is compiled out entirely by -DSMN_DISABLE_FAILPOINTS=ON
// (cmake/FailPoints.cmake): both entry points collapse to constants, so
// release builds can prove bit-identical behavior with the sites gone.
// In the default build an unconfigured site costs one branch on a
// pointer load.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rng/splitmix64.hpp"

#if defined(SMN_DISABLE_FAILPOINTS)
#define SMN_FAILPOINTS_ENABLED 0
#else
#define SMN_FAILPOINTS_ENABLED 1
#endif

namespace smn::util {

/// Compile-time fault-injection switch (mirrors obs::kEnabled).
inline constexpr bool kFailPointsEnabled = SMN_FAILPOINTS_ENABLED != 0;

/// The exception an armed "throw" site raises. Deliberately a
/// std::runtime_error subtype: injected faults must travel the same
/// error paths real ones do.
class InjectedFault : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

#if SMN_FAILPOINTS_ENABLED

/// Process-wide fail-point table. Configured once from SMN_FAILPOINTS at
/// first use; tests may reconfigure between runs via configure() (not
/// concurrently with evaluations — the table swap is atomic, but a test
/// that reconfigures mid-run would race its own expectations).
class FailPoints {
public:
    struct Site {
        double probability{0.0};
        std::uint64_t seed{0};
        bool abort_process{false};
        /// Evaluation index, shared by every thread that hits the site.
        std::atomic<std::uint64_t> evaluations{0};
    };

    [[nodiscard]] static FailPoints& instance() {
        static FailPoints fp;
        return fp;
    }

    /// Replaces the configuration with a parsed spec ("" disarms every
    /// site). Throws std::invalid_argument on a malformed spec.
    void configure(const std::string& spec) {
        auto table = parse(spec);
        const std::lock_guard<std::mutex> lock{configure_mutex_};
        table_.store(table.get(), std::memory_order_release);
        if (table != nullptr) tables_.push_back(std::move(table));
    }

    /// True iff `site` is armed and fires on this evaluation. Advances
    /// the site's evaluation counter; the decision is a pure function of
    /// (site seed, evaluation index).
    [[nodiscard]] bool fires(std::string_view site) {
        auto* table = table_.load(std::memory_order_acquire);
        if (table == nullptr) return false;
        const auto it = table->find(site);
        if (it == table->end()) return false;
        auto& s = it->second;
        const std::uint64_t i = s.evaluations.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t u = rng::mix64(rng::mix64(s.seed) ^ rng::mix64(i + 1));
        return static_cast<double>(u >> 11) * 0x1.0p-53 < s.probability;
    }

    /// Acting form: throws InjectedFault (or aborts, per the spec) when
    /// the site fires.
    void evaluate(std::string_view site) {
        auto* table = table_.load(std::memory_order_acquire);
        if (table == nullptr) return;
        const auto it = table->find(site);
        if (it == table->end()) return;
        auto& s = it->second;
        const std::uint64_t i = s.evaluations.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t u = rng::mix64(rng::mix64(s.seed) ^ rng::mix64(i + 1));
        if (static_cast<double>(u >> 11) * 0x1.0p-53 >= s.probability) return;
        if (s.abort_process) std::abort();
        throw InjectedFault{"injected fault at '" + std::string{site} + "' (evaluation " +
                            std::to_string(i) + ")"};
    }

private:
    using Table = std::map<std::string, Site, std::less<>>;

    FailPoints() {
        const char* env = std::getenv("SMN_FAILPOINTS");
        if (env != nullptr && *env != '\0') configure(env);
    }

    /// name=probability@seed[:action], comma-separated.
    static std::unique_ptr<Table> parse(const std::string& spec) {
        if (spec.empty()) return nullptr;
        auto table = std::make_unique<Table>();
        std::size_t start = 0;
        while (start <= spec.size()) {
            const auto comma = spec.find(',', start);
            const auto entry =
                spec.substr(start, comma == std::string::npos ? comma : comma - start);
            if (!entry.empty()) {
                const auto eq = entry.find('=');
                const auto at = entry.find('@', eq == std::string::npos ? 0 : eq);
                if (eq == std::string::npos || eq == 0 || at == std::string::npos) {
                    throw std::invalid_argument(
                        "SMN_FAILPOINTS: want name=prob@seed[:action], got '" + entry + "'");
                }
                Site site;
                std::string action = "throw";
                auto tail = entry.substr(at + 1);
                if (const auto colon = tail.find(':'); colon != std::string::npos) {
                    action = tail.substr(colon + 1);
                    tail = tail.substr(0, colon);
                }
                try {
                    std::size_t used = 0;
                    site.probability = std::stod(entry.substr(eq + 1, at - eq - 1), &used);
                    if (used != at - eq - 1) throw std::invalid_argument(entry);
                    used = 0;
                    site.seed = std::stoull(tail, &used);
                    if (used != tail.size()) throw std::invalid_argument(entry);
                } catch (const std::exception&) {
                    throw std::invalid_argument(
                        "SMN_FAILPOINTS: bad probability or seed in '" + entry + "'");
                }
                if (action == "abort") {
                    site.abort_process = true;
                } else if (action != "throw") {
                    throw std::invalid_argument("SMN_FAILPOINTS: unknown action '" + action +
                                                "' in '" + entry + "'");
                }
                auto [it, inserted] = table->try_emplace(std::string{entry.substr(0, eq)});
                if (!inserted) {
                    throw std::invalid_argument("SMN_FAILPOINTS: duplicate site '" +
                                                std::string{entry.substr(0, eq)} + "'");
                }
                it->second.probability = site.probability;
                it->second.seed = site.seed;
                it->second.abort_process = site.abort_process;
            }
            if (comma == std::string::npos) break;
            start = comma + 1;
        }
        return table->empty() ? nullptr : std::move(table);
    }

    /// Superseded tables stay alive in tables_ rather than being freed on
    /// reconfigure: evaluations may still be reading an old table from
    /// another thread, and test-only reconfiguration keeps the retained
    /// set tiny. Everything is owned by the singleton so LeakSanitizer
    /// sees a clean exit.
    std::atomic<Table*> table_{nullptr};
    std::mutex configure_mutex_;
    std::vector<std::unique_ptr<Table>> tables_;
};

/// Acting fail point: no-op unless `site` is armed and fires, in which
/// case it throws InjectedFault or aborts per the site's action.
inline void failpoint(std::string_view site) { FailPoints::instance().evaluate(site); }

/// Query fail point for sites with custom failure semantics (truncation,
/// dropped records): true when armed and firing, never throws.
[[nodiscard]] inline bool failpoint_fires(std::string_view site) {
    return FailPoints::instance().fires(site);
}

#else  // SMN_FAILPOINTS_ENABLED

inline void failpoint(std::string_view) noexcept {}
[[nodiscard]] inline constexpr bool failpoint_fires(std::string_view) noexcept { return false; }

#endif  // SMN_FAILPOINTS_ENABLED

}  // namespace smn::util
