// number.hpp — exact text round-trip for doubles shared by the
// persistence and wire layers.
//
// The sweep journal (io/journal.cpp) and the distributed-sweep protocol
// (net/protocol.cpp) both carry per-replication metric doubles as text
// and both promise the same thing: a value that travels through the text
// form re-serializes to the exact bytes the original producer would have
// written, so replayed or remotely-computed units keep merged JSONL
// output byte-identical. That only holds if every layer uses one
// encoding — shortest round-trip via std::to_chars, parsed back with a
// full-consumption strtod — so it lives here instead of being duplicated
// per subsystem. (exp::format_double is intentionally separate: JSON
// cannot represent nan/inf, so the writer maps them to null.)
#pragma once

#include <charconv>
#include <cstdlib>
#include <string>
#include <string_view>

namespace smn::util {

/// Shortest decimal rendering that parses back to the exact same bits.
[[nodiscard]] inline std::string render_double(double value) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    if (ec != std::errc{}) return "0";
    return std::string(buf, ptr);
}

/// Parses a double, demanding the whole token is consumed. Returns false
/// on empty input, trailing garbage, or no conversion ("nan"/"inf" parse,
/// matching what render_double can emit).
[[nodiscard]] inline bool parse_double(std::string_view text, double& out) {
    if (text.empty()) return false;
    const std::string owned{text};  // strtod needs a terminator
    char* end = nullptr;
    out = std::strtod(owned.c_str(), &end);
    return end == owned.c_str() + owned.size();
}

}  // namespace smn::util
