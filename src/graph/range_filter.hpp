// range_filter.hpp — masked in-range tests for the visibility pair scan.
//
// The hot predicate of VisibilityGraphBuilder is "is agent j within
// distance r of agent i" over short contiguous candidate slices (a bucket
// row segment or a gathered bucket). At percolation occupancy (≈1 agent
// per bucket) those slices are 1–8 agents long, so a classic
// full-vector-plus-scalar-tail loop would almost never take the vector
// path. Instead the kernel here is *masked fixed width*: it always loads
// one full 8-lane vector and masks away the lanes ≥ count, which turns
// every candidate slice into exactly one vector op.
//
// Contract: callers must keep xs/ys readable for kRangeLanes elements
// from the given offset even when count < kRangeLanes — the scan buffers
// (RowBuffer, ScanScratch) are padded with kRangePad value-initialized
// elements for this; the padded lanes are computed on and then discarded
// by the mask, so their contents never affect the result.
//
// The returned bit i (i < count) is set iff candidate i is in range. The
// caller iterates survivors in ascending bit order (countr_zero /
// clear-lowest), which is exactly the scalar iteration order — so the
// DSU union sequence, the cached-edge arenas, and therefore the
// trajectories are bit-identical to the scalar scan (and across SIMD
// backends; the force-scalar CI leg replays the same goldens).
//
// Metrics: L1 and L∞ are 8-wide int32 lane math. Distances fit int32
// because coordinates come from a Grid2D, whose node count fits int32
// (side ≤ 46341 ⇒ |dx|+|dy| ≤ 92680). Squared Euclidean needs 64-bit
// products, which AVX2/NEON cannot form from 32-bit lanes cheaply — and
// no tracked scenario uses it — so it takes the scalar loop on every
// backend, through the same masked interface.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "grid/point.hpp"
#include "util/simd.hpp"

namespace smn::graph {

/// Candidates tested per call; also the buffer padding the caller owes.
inline constexpr std::size_t kRangeLanes = static_cast<std::size_t>(util::simd::kI32Lanes);
inline constexpr std::size_t kRangePad = kRangeLanes;

/// Reference implementation: plain scalar loop, any backend. Semantics
/// identical to in_range_mask8 (tests and microbenches diff the two).
template <grid::Metric M>
[[nodiscard]] inline std::uint32_t in_range_mask8_scalar(const grid::Coord* xs,
                                                         const grid::Coord* ys,
                                                         std::size_t count, grid::Coord px,
                                                         grid::Coord py,
                                                         std::int32_t radius) noexcept {
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::int32_t dx = xs[i] - px;
        const std::int32_t dy = ys[i] - py;
        bool in = false;
        if constexpr (M == grid::Metric::kEuclidean) {
            in = std::int64_t{dx} * dx + std::int64_t{dy} * dy <=
                 std::int64_t{radius} * radius;
        } else {
            const std::int32_t adx = dx < 0 ? -dx : dx;
            const std::int32_t ady = dy < 0 ? -dy : dy;
            if constexpr (M == grid::Metric::kManhattan) {
                in = adx + ady <= radius;
            } else {
                in = (adx > ady ? adx : ady) <= radius;
            }
        }
        bits |= static_cast<std::uint32_t>(in) << i;
    }
    return bits;
}

/// Tests candidates (xs[i], ys[i]) for i < count ≤ kRangeLanes against
/// (px, py); bit i of the result is set iff in range under metric M.
/// Vectorized for L1/L∞ on SIMD backends; see the header comment for the
/// padding contract.
template <grid::Metric M>
[[nodiscard]] inline std::uint32_t in_range_mask8(const grid::Coord* xs, const grid::Coord* ys,
                                                  std::size_t count, grid::Coord px,
                                                  grid::Coord py,
                                                  std::int32_t radius) noexcept {
#if defined(SMN_SIMD_SCALAR)
    return in_range_mask8_scalar<M>(xs, ys, count, px, py, radius);
#else
    if constexpr (M == grid::Metric::kEuclidean) {
        return in_range_mask8_scalar<M>(xs, ys, count, px, py, radius);
    } else {
        namespace s = util::simd;
        const auto adx = s::abs(s::sub(s::I32x8::load(xs), s::I32x8::splat(px)));
        const auto ady = s::abs(s::sub(s::I32x8::load(ys), s::I32x8::splat(py)));
        const auto dist = M == grid::Metric::kManhattan ? s::add(adx, ady) : s::max(adx, ady);
        const auto over = s::cmpgt(dist, s::I32x8::splat(radius));
        return ~s::move_mask(over) & ((1u << count) - 1u);
    }
#endif
}

namespace detail {

/// kCompressLut[bits] = the set-bit lanes of `bits` in ascending order
/// (trailing lanes are don't-cares) — the shuffle pattern that packs the
/// survivors of an 8-lane mask to the front of a vector.
inline constexpr auto kCompressLut = [] {
    std::array<std::array<std::int32_t, 8>, 256> lut{};
    for (std::uint32_t bits = 0; bits < 256; ++bits) {
        std::size_t n = 0;
        for (std::int32_t lane = 0; lane < 8; ++lane) {
            if (bits & (1u << lane)) lut[bits][n++] = lane;
        }
    }
    return lut;
}();

}  // namespace detail

/// Compressed store of a masked 8-lane survivor set: writes src[lane] for
/// every set bit of `bits` (lanes ascending — the scalar iteration order)
/// to dst[0..popcount), and returns the survivor count. `src` and `dst`
/// must both be readable/writable for kRangeLanes elements regardless of
/// the popcount — the same padding contract as in_range_mask8, which is
/// where `bits` comes from. This turns the branchy bit-scan loop over the
/// in-range mask into one branch-free shuffle + store on SIMD backends.
inline std::size_t compress_store8(std::uint32_t bits, const std::int32_t* src,
                                   std::int32_t* dst) noexcept {
#if defined(SMN_SIMD_AVX2)
    const auto idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(detail::kCompressLut[bits & 0xFFu].data()));
    const auto v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), _mm256_permutevar8x32_epi32(v, idx));
    return static_cast<std::size_t>(std::popcount(bits & 0xFFu));
#else
    // Scalar/NEON: the plain bit-scan emits the same survivors in the same
    // order (NEON has no cross-lane variable shuffle worth the setup here).
    std::size_t n = 0;
    for (auto b = bits & 0xFFu; b != 0; b &= b - 1) {
        dst[n++] = src[static_cast<std::size_t>(std::countr_zero(b))];
    }
    return n;
#endif
}

}  // namespace smn::graph
