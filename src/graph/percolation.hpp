// percolation.hpp — the paper's radius scales and regime classification.
//
// All closed-form radius thresholds appearing in the paper live here:
//
//   r_c(n, k)              ≈ √(n/k)                 percolation point (Sec. 1, [24,25])
//   island γ(n, k)          = √(n/(4e⁶k))           Lemma 6 island parameter
//   lower-bound radius      = √(n/(64e⁶k))          Theorem 2's largest admissible r
//
// plus the regime classifier used by experiments to label a configuration
// sub-/super-critical.
#pragma once

#include <cmath>
#include <cstdint>

namespace smn::graph {

/// Percolation radius r_c ≈ √(n/k): above it G_t(r) has a giant component
/// w.h.p., below it all components are logarithmic (Sec. 1).
[[nodiscard]] inline double percolation_radius(std::int64_t n, std::int64_t k) noexcept {
    return std::sqrt(static_cast<double>(n) / static_cast<double>(k));
}

/// Island parameter γ = √(n/(4e⁶k)) of Lemma 6: islands of parameter γ
/// hold at most log n agents w.h.p. over 8n log²n steps.
[[nodiscard]] inline double island_gamma(std::int64_t n, std::int64_t k) noexcept {
    const double e6 = std::exp(6.0);
    return std::sqrt(static_cast<double>(n) / (4.0 * e6 * static_cast<double>(k)));
}

/// Largest radius for which the Theorem 2 lower bound is proved:
/// r ≤ √(n/(64e⁶k)) (= γ/4).
[[nodiscard]] inline double lower_bound_radius(std::int64_t n, std::int64_t k) noexcept {
    const double e6 = std::exp(6.0);
    return std::sqrt(static_cast<double>(n) / (64.0 * e6 * static_cast<double>(k)));
}

/// Regime of a (n, k, r) configuration relative to the percolation point.
enum class Regime : std::uint8_t {
    kSubcritical,    ///< r < r_c: sparse, the paper's main setting
    kNearCritical,   ///< r within ±10% of r_c
    kSupercritical,  ///< r > r_c: giant component, Peres et al. regime
};

[[nodiscard]] inline Regime classify_regime(std::int64_t n, std::int64_t k,
                                            std::int64_t r) noexcept {
    const double rc = percolation_radius(n, k);
    const double rr = static_cast<double>(r);
    if (rr < 0.9 * rc) return Regime::kSubcritical;
    if (rr > 1.1 * rc) return Regime::kSupercritical;
    return Regime::kNearCritical;
}

[[nodiscard]] inline const char* regime_name(Regime regime) noexcept {
    switch (regime) {
        case Regime::kSubcritical: return "subcritical";
        case Regime::kNearCritical: return "near-critical";
        case Regime::kSupercritical: return "supercritical";
    }
    return "?";
}

}  // namespace smn::graph
