// dsu.hpp — disjoint-set union (union–find) over agent ids.
//
// Used every simulated time step to extract the connected components of
// the visibility graph G_t(r): agents within range are unioned, then each
// component floods its rumors. Union by size + path halving gives the
// usual near-constant amortized cost; `reset()` reuses the allocation.
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

#include "obs/tally.hpp"

namespace smn::graph {

/// Union–find over elements 0..size-1 with union by size.
class DisjointSets {
public:
    /// Telemetry tallies (zero under -DSMN_DISABLE_OBS). Cumulative over
    /// the object's lifetime — reset() intentionally leaves them alone so
    /// an engine can report totals across all steps of a replication.
    struct Stats {
        std::int64_t unites{0};          ///< merges that joined two sets
        std::int64_t fast_path_hits{0};  ///< same-parent/under-root early outs
    };

    explicit DisjointSets(std::size_t size) { reset(size); }

    /// Re-initializes to `size` singleton sets, reusing storage.
    void reset(std::size_t size) {
        parent_.resize(size);
        std::iota(parent_.begin(), parent_.end(), std::int32_t{0});
        size_.assign(size, 1);
        set_count_ = size;
    }

    [[nodiscard]] std::size_t element_count() const noexcept { return parent_.size(); }

    /// Number of disjoint sets currently.
    [[nodiscard]] std::size_t set_count() const noexcept { return set_count_; }

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

    /// Representative of x's set (path halving).
    [[nodiscard]] std::int32_t find(std::int32_t x) noexcept {
        assert(x >= 0 && static_cast<std::size_t>(x) < parent_.size());
        while (parent_[static_cast<std::size_t>(x)] != x) {
            auto& p = parent_[static_cast<std::size_t>(x)];
            p = parent_[static_cast<std::size_t>(p)];
            x = p;
        }
        return x;
    }

    /// Merges the sets of a and b; returns true if they were distinct.
    bool unite(std::int32_t a, std::int32_t b) noexcept {
        // Equal direct parents ⇒ same set already; skip both finds. Pure
        // fast path: a full call on a same-set pair changes no links that
        // affect any root (path halving never moves a root), so the
        // resulting partition — and every find() — is identical.
        if (parent_[static_cast<std::size_t>(a)] == parent_[static_cast<std::size_t>(b)]) {
            SMN_TALLY(++stats_.fast_path_hits);
            return false;
        }
        auto ra = find(a);
        auto rb = find(b);
        if (ra == rb) return false;
        if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)]) {
            std::swap(ra, rb);
        }
        parent_[static_cast<std::size_t>(rb)] = ra;
        size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
        --set_count_;
        SMN_TALLY(++stats_.unites);
        return true;
    }

    /// unite() for callers that already hold a's current root (e.g. a flush
    /// loop draining runs of pairs that share their a side): performs
    /// exactly the structural links unite(a, b) would, skipping the
    /// redundant find(a), and returns the merged set's root — which is a's
    /// root for the caller to carry into the next call of the run.
    [[nodiscard]] std::int32_t unite_root(std::int32_t ra, std::int32_t b) noexcept {
        assert(parent_[static_cast<std::size_t>(ra)] == ra && "unite_root: ra is not a root");
        if (parent_[static_cast<std::size_t>(b)] == ra) {  // already under ra
            SMN_TALLY(++stats_.fast_path_hits);
            return ra;
        }
        const auto rb = find(b);
        if (ra == rb) return ra;
        --set_count_;
        SMN_TALLY(++stats_.unites);
        if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)]) {
            parent_[static_cast<std::size_t>(ra)] = rb;
            size_[static_cast<std::size_t>(rb)] += size_[static_cast<std::size_t>(ra)];
            return rb;
        }
        parent_[static_cast<std::size_t>(rb)] = ra;
        size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
        return ra;
    }

    /// True iff a and b are currently in the same set.
    [[nodiscard]] bool same(std::int32_t a, std::int32_t b) noexcept {
        return find(a) == find(b);
    }

    /// Size of the set containing x.
    [[nodiscard]] std::int32_t size_of(std::int32_t x) noexcept {
        return size_[static_cast<std::size_t>(find(x))];
    }

private:
    std::vector<std::int32_t> parent_;
    std::vector<std::int32_t> size_;
    std::size_t set_count_{0};
    Stats stats_;  ///< telemetry tallies; survives reset()
};

}  // namespace smn::graph
