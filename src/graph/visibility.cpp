#include "graph/visibility.hpp"

#include <algorithm>

namespace smn::graph {

VisibilityGraphBuilder::VisibilityGraphBuilder(const grid::Grid2D& grid, std::int64_t radius,
                                               grid::Metric metric)
    : grid_{grid},
      radius_{radius},
      metric_{metric},
      occupancy_{grid},
      buckets_{spatial::BucketIndex::for_radius(grid, radius)} {}

void VisibilityGraphBuilder::build(std::span<const grid::Point> positions, DisjointSets& dsu) {
    dsu.reset(positions.size());
    if (radius_ == 0) {
        // Co-location: union every agent on a node with the node's first
        // agent; O(k) total.
        occupancy_.rebuild(positions);
        for (const auto node : occupancy_.occupied_nodes()) {
            const auto first = occupancy_.first_at(grid_.point_of(node));
            occupancy_.for_each_at(grid_.point_of(node),
                                   [&](std::int32_t a) { dsu.unite(first, a); });
        }
        return;
    }
    buckets_.rebuild(positions);
    for (std::size_t a = 0; a < positions.size(); ++a) {
        const auto self = static_cast<std::int32_t>(a);
        buckets_.for_each_within(positions[a], radius_, metric_, [&](std::int32_t b) {
            // Visit each unordered pair once (b < self) to halve the work;
            // the co-located pair (b == self) is skipped.
            if (b < self) dsu.unite(self, b);
        });
    }
}

void VisibilityGraphBuilder::build_naive(std::span<const grid::Point> positions,
                                         std::int64_t radius, grid::Metric metric,
                                         DisjointSets& dsu) {
    dsu.reset(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (std::size_t j = i + 1; j < positions.size(); ++j) {
            if (grid::within(positions[i], positions[j], radius, metric)) {
                dsu.unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j));
            }
        }
    }
}

ComponentStats component_stats(DisjointSets& dsu) {
    ComponentStats stats;
    const auto k = dsu.element_count();
    if (k == 0) return stats;

    std::vector<std::int64_t> size_of_root(k, 0);
    for (std::size_t a = 0; a < k; ++a) {
        ++size_of_root[static_cast<std::size_t>(dsu.find(static_cast<std::int32_t>(a)))];
    }

    std::int64_t count = 0;
    std::int64_t max_size = 0;
    for (const auto s : size_of_root) {
        if (s == 0) continue;
        ++count;
        max_size = std::max(max_size, s);
    }
    stats.component_count = count;
    stats.max_size = max_size;
    stats.mean_size = static_cast<double>(k) / static_cast<double>(count);
    stats.largest_fraction = static_cast<double>(max_size) / static_cast<double>(k);

    stats.size_histogram.assign(static_cast<std::size_t>(max_size) + 1, 0);
    for (const auto s : size_of_root) {
        if (s > 0) ++stats.size_histogram[static_cast<std::size_t>(s)];
    }
    return stats;
}

std::vector<std::int32_t> component_labels(DisjointSets& dsu) {
    std::vector<std::int32_t> labels(dsu.element_count());
    for (std::size_t a = 0; a < labels.size(); ++a) {
        labels[a] = dsu.find(static_cast<std::int32_t>(a));
    }
    return labels;
}

}  // namespace smn::graph
