#include "graph/visibility.hpp"

#include <algorithm>

namespace smn::graph {

VisibilityGraphBuilder::VisibilityGraphBuilder(const grid::Grid2D& grid, std::int64_t radius,
                                               grid::Metric metric)
    : grid_{grid},
      radius_{radius},
      metric_{metric},
      occupancy_{grid},
      buckets_{spatial::BucketIndex::for_radius(grid, radius)} {}

void VisibilityGraphBuilder::build(std::span<const grid::Point> positions, DisjointSets& dsu) {
    dsu.reset(positions.size());
    if (radius_ == 0) {
        // Co-location: union every agent on a node with the node's first
        // agent; O(k) total.
        occupancy_.rebuild(positions);
        for (const auto node : occupancy_.occupied_nodes()) {
            const auto first = occupancy_.first_at(grid_.point_of(node));
            occupancy_.for_each_at(grid_.point_of(node),
                                   [&](std::int32_t a) { dsu.unite(first, a); });
        }
        return;
    }
    buckets_.rebuild(positions);
    unite_pairs(dsu);
}

void VisibilityGraphBuilder::rebuild_components(std::span<const grid::Point> positions,
                                                DisjointSets& dsu) {
    if (radius_ == 0) {
        build(positions, dsu);
        return;
    }
    dsu.reset(positions.size());
    unite_pairs(dsu);
}

void VisibilityGraphBuilder::unite_pairs(DisjointSets& dsu) {
    // Half-neighborhood enumeration: each unordered in-range pair exactly
    // once, straight into the union-find.
    buckets_.for_each_pair_within(radius_, metric_,
                                  [&](std::int32_t a, std::int32_t b) { dsu.unite(a, b); });
}

void VisibilityGraphBuilder::build_naive(std::span<const grid::Point> positions,
                                         std::int64_t radius, grid::Metric metric,
                                         DisjointSets& dsu) {
    dsu.reset(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (std::size_t j = i + 1; j < positions.size(); ++j) {
            if (grid::within(positions[i], positions[j], radius, metric)) {
                dsu.unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j));
            }
        }
    }
}

void component_stats(DisjointSets& dsu, ComponentStats& out,
                     std::vector<std::int64_t>& root_size_scratch) {
    out.component_count = 0;
    out.max_size = 0;
    out.mean_size = 0.0;
    out.largest_fraction = 0.0;
    out.size_histogram.clear();
    const auto k = dsu.element_count();
    if (k == 0) return;

    root_size_scratch.assign(k, 0);
    for (std::size_t a = 0; a < k; ++a) {
        ++root_size_scratch[static_cast<std::size_t>(dsu.find(static_cast<std::int32_t>(a)))];
    }

    std::int64_t count = 0;
    std::int64_t max_size = 0;
    for (const auto s : root_size_scratch) {
        if (s == 0) continue;
        ++count;
        max_size = std::max(max_size, s);
    }
    out.component_count = count;
    out.max_size = max_size;
    out.mean_size = static_cast<double>(k) / static_cast<double>(count);
    out.largest_fraction = static_cast<double>(max_size) / static_cast<double>(k);

    out.size_histogram.assign(static_cast<std::size_t>(max_size) + 1, 0);
    for (const auto s : root_size_scratch) {
        if (s > 0) ++out.size_histogram[static_cast<std::size_t>(s)];
    }
}

ComponentStats component_stats(DisjointSets& dsu) {
    ComponentStats stats;
    std::vector<std::int64_t> scratch;
    component_stats(dsu, stats, scratch);
    return stats;
}

void component_labels(DisjointSets& dsu, std::vector<std::int32_t>& out) {
    out.resize(dsu.element_count());
    for (std::size_t a = 0; a < out.size(); ++a) {
        out[a] = dsu.find(static_cast<std::int32_t>(a));
    }
}

std::vector<std::int32_t> component_labels(DisjointSets& dsu) {
    std::vector<std::int32_t> labels;
    component_labels(dsu, labels);
    return labels;
}

}  // namespace smn::graph
