#include "graph/visibility.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <limits>

#include "graph/range_filter.hpp"

namespace smn::graph {
namespace {

/// Coordinate-wise in-range test (metric resolved at compile time), the
/// hot predicate of the pair scan. L1/L∞ stay in 32-bit arithmetic
/// (coords are int32, so |dx|+|dy| < 2^32 cannot overflow a signed 64-bit
/// add of two int32 — and fits int32 since coords are grid-bounded);
/// squared Euclidean promotes to 64-bit.
template <grid::Metric M>
[[nodiscard]] inline bool within_coords(grid::Coord ax, grid::Coord ay, grid::Coord bx,
                                        grid::Coord by, std::int64_t radius) noexcept {
    if constexpr (M == grid::Metric::kEuclidean) {
        const std::int64_t dx = std::int64_t{ax} - bx;
        const std::int64_t dy = std::int64_t{ay} - by;
        return dx * dx + dy * dy <= radius * radius;
    } else {
        const std::int32_t dx = ax - bx;
        const std::int32_t dy = ay - by;
        const std::int32_t adx = dx < 0 ? -dx : dx;
        const std::int32_t ady = dy < 0 ? -dy : dy;
        if constexpr (M == grid::Metric::kManhattan) {
            return std::int64_t{adx} + ady <= radius;
        } else {
            return std::int64_t{adx > ady ? adx : ady} <= radius;
        }
    }
}

}  // namespace

VisibilityGraphBuilder::VisibilityGraphBuilder(const grid::Grid2D& grid, std::int64_t radius,
                                               grid::Metric metric)
    : grid_{grid},
      radius_{radius},
      rad32_{static_cast<grid::Coord>(
          std::min<std::int64_t>(radius, std::numeric_limits<grid::Coord>::max()))},
      metric_{metric},
      occupancy_{grid},
      buckets_{spatial::BucketIndex::for_radius(grid, radius)},
      threads_{util::step_threads()} {
    if (radius_ >= 1) {
        // Forward half-neighborhood for this radius/bucket-side pair: with
        // the for_radius sizing the reach is 1 (E, SW, S, SE), but any
        // reach is supported.
        const auto side = buckets_.bucket_side();
        reach_ = static_cast<grid::Coord>((radius_ + side - 1) / side);
        const auto reach = reach_;
        for (grid::Coord dx = 1; dx <= reach; ++dx) scan_fwd_.emplace_back(dx, 0);
        for (grid::Coord dy = 1; dy <= reach; ++dy) {
            for (grid::Coord dx = -reach; dx <= reach; ++dx) scan_fwd_.emplace_back(dx, dy);
        }
        for (const auto& [dx, dy] : scan_fwd_) taint_back_.emplace_back(-dx, -dy);

        const auto bx_count = buckets_.buckets_x();
        const auto by_count = buckets_.buckets_y();
        const auto bucket_count = static_cast<std::size_t>(std::int64_t{bx_count} * by_count);
        edge_flags_.resize(bucket_count);
        std::size_t b = 0;
        for (grid::Coord by = 0; by < by_count; ++by) {
            for (grid::Coord bx = 0; bx < bx_count; ++bx, ++b) {
                edge_flags_[b] = static_cast<std::uint8_t>((bx > 0 ? 1u : 0u) |
                                                           (bx + 1 < bx_count ? 2u : 0u) |
                                                           (by + 1 < by_count ? 4u : 0u));
            }
        }
        entry_off_[0].assign(bucket_count, 0);
        entry_off_[1].assign(bucket_count, 0);
        entry_len_[0].assign(bucket_count, 0);
        entry_len_[1].assign(bucket_count, 0);
        entry_stamp_.assign(bucket_count, 0);
        taint_stamp_.assign(bucket_count, 0);
    }
}

void VisibilityGraphBuilder::build(std::span<const grid::Point> positions, DisjointSets& dsu) {
    dsu.reset(positions.size());
    if (radius_ == 0) {
        // Co-location: union every agent on a node with the node's first
        // agent; O(k) total.
        occupancy_.rebuild(positions);
        for (const auto node : occupancy_.occupied_nodes()) {
            const auto first = occupancy_.first_at(grid_.point_of(node));
            occupancy_.for_each_at(grid_.point_of(node),
                                   [&](std::int32_t a) { dsu.unite(first, a); });
        }
        return;
    }
    buckets_.rebuild(positions);
    component_pass(positions, dsu, /*force_rescan=*/true);
}

void VisibilityGraphBuilder::rebuild_components(std::span<const grid::Point> positions,
                                                DisjointSets& dsu) {
    if (radius_ == 0) {
        build(positions, dsu);
        return;
    }
    dsu.reset(positions.size());
    component_pass(positions, dsu, /*force_rescan=*/false);
}

void VisibilityGraphBuilder::component_pass(std::span<const grid::Point> positions,
                                            DisjointSets& dsu, bool force_rescan) {
    ++seq_;
    ++stats_.passes;
    stats_.dirty_buckets += static_cast<std::int64_t>(buckets_.dirty_buckets().size());
    // smn-lint: allow(wall-clock) timing-only telemetry, gated behind timing_
    using clock = std::chrono::steady_clock;
    const auto prep_begin = timing_ ? clock::now() : clock::time_point{};
    // Bypass heuristic: once half the occupied buckets are dirty, taint
    // expansion makes nearly every footprint dirty anyway, so cache
    // maintenance can only cost. Build()s force a cached pass so the very
    // next step can already replay. The predicate reads only the
    // deterministic dirty set — identical at any thread count.
    const bool bypass = !force_rescan &&
                        buckets_.dirty_buckets().size() * 2 >= buckets_.occupied_bucket_count();
    if (bypass) ++stats_.bypass_passes;
    if (!bypass && !force_rescan) expand_taint();
    const bool sharded = threads_ > 1 && buckets_.occupied_bucket_count() > 1;
    if (sharded) enumerate_units();  // shards need the unit list upfront
    if (timing_) {
        prep_seconds_ += std::chrono::duration<double>(clock::now() - prep_begin).count();
    }
    const bool dense = buckets_.occupied_bucket_count() * 2 >= entry_stamp_.size();
    const auto dispatch = [&]<grid::Metric M>() {
        if (sharded) {
            bypass ? sharded_pass<M, true>(positions, dsu, force_rescan)
                   : sharded_pass<M, false>(positions, dsu, force_rescan);
        } else if (dense && reach_ == 1) {
            bypass ? row_window_pass<M, true>(positions, dsu, force_rescan)
                   : row_window_pass<M, false>(positions, dsu, force_rescan);
        } else {
            bypass ? serial_pass<M, true>(positions, dsu, force_rescan)
                   : serial_pass<M, false>(positions, dsu, force_rescan);
        }
    };
    switch (metric_) {
        case grid::Metric::kManhattan:
            dispatch.template operator()<grid::Metric::kManhattan>();
            break;
        case grid::Metric::kChebyshev:
            dispatch.template operator()<grid::Metric::kChebyshev>();
            break;
        case grid::Metric::kEuclidean:
            dispatch.template operator()<grid::Metric::kEuclidean>();
            break;
    }
    buckets_.end_step();  // the dirty epoch is consumed
    if constexpr (obs::kEnabled) {
        // Drain the per-worker pair tallies (each worker owned one scratch
        // for the pass, and the pool has joined).
        for (auto& scratch : scratch_) {
            stats_.pairs_tested += scratch.pairs_tested;
            stats_.pairs_survived += scratch.pairs_survived;
            scratch.pairs_tested = 0;
            scratch.pairs_survived = 0;
        }
    }
}

/// Expands the dirty bucket set into taint stamps: a dirty bucket
/// invalidates its own scan unit plus the units whose forward footprint
/// contains it (its backward neighbors).
void VisibilityGraphBuilder::expand_taint() {
    const auto bx_count = buckets_.buckets_x();
    const auto by_count = buckets_.buckets_y();
    for (const auto d : buckets_.dirty_buckets()) {
        const auto dx0 = static_cast<grid::Coord>(d % bx_count);
        const auto dy0 = static_cast<grid::Coord>(d / bx_count);
        taint_stamp_[static_cast<std::size_t>(d)] = seq_;
        for (const auto& [dx, dy] : taint_back_) {
            const auto nx = dx0 + dx;
            const auto ny = dy0 + dy;
            if (nx < 0 || nx >= bx_count || ny < 0 || ny >= by_count) continue;
            taint_stamp_[static_cast<std::size_t>(std::int64_t{ny} * bx_count + nx)] = seq_;
        }
    }
}

/// Fills units_ with the occupied buckets in row-major order: a full sweep
/// in the dense regime (no sort), a sort of the occupied list when buckets
/// far outnumber agents.
void VisibilityGraphBuilder::enumerate_units() {
    const auto bucket_count = entry_stamp_.size();
    const auto occupied = buckets_.occupied_buckets();
    units_.clear();
    if (occupied.size() * 2 >= bucket_count) {
        for (std::int64_t b = 0; b < static_cast<std::int64_t>(bucket_count); ++b) {
            if (buckets_.bucket_occupied(b)) units_.push_back(b);
        }
    } else {
        units_.assign(occupied.begin(), occupied.end());
        std::sort(units_.begin(), units_.end());
    }
}

void VisibilityGraphBuilder::prepare_scratch(std::size_t k, int count, bool mini) {
    if (static_cast<int>(scratch_.size()) < count) {
        scratch_.resize(static_cast<std::size_t>(count));
    }
    if (!mini) return;
    for (int w = 0; w < count; ++w) {
        scratch_[static_cast<std::size_t>(w)].parent.resize(k);
        scratch_[static_cast<std::size_t>(w)].stamp.resize(k, 0);
    }
}

/// The shared pair sink: with kFilter, deduplicate through the unit-local
/// mini-DSU and keep only spanning survivors; route what remains to the
/// edge buffer (`out`) and/or the shared DSU — whichever the calling pass
/// wired up.
template <bool kFilter>
void VisibilityGraphBuilder::record_pair(ScanScratch& scratch, std::int32_t a, std::int32_t b,
                                         std::vector<CachedEdge>* out, DisjointSets* dsu) {
    SMN_TALLY(++scratch.pairs_survived);
    if constexpr (kFilter) {
        const auto ra = mini_find(scratch, a);
        const auto rb = mini_find(scratch, b);
        if (ra == rb) return;
        scratch.parent[static_cast<std::size_t>(rb)] = ra;
    }
    if (out != nullptr) out->push_back(CachedEdge{a, b});
    if (dsu != nullptr) dsu->unite(a, b);
}

/// Commits `count` edges as bucket `bucket`'s cache entry in the current
/// arena and unions them into `dsu` — the shared tail of every replay and
/// of the sharded merge.
void VisibilityGraphBuilder::commit_entry(std::size_t bucket, const CachedEdge* edges,
                                          std::size_t count, DisjointSets& dsu) {
    const auto cur = static_cast<std::size_t>(seq_ & 1);
    auto& arena = arena_[cur];
    entry_off_[cur][bucket] = static_cast<std::int32_t>(arena.size());
    entry_len_[cur][bucket] = static_cast<std::int32_t>(count);
    entry_stamp_[bucket] = seq_;
    arena.insert(arena.end(), edges, edges + count);
    for (std::size_t e = 0; e < count; ++e) dsu.unite(edges[e].a, edges[e].b);
}

std::int32_t VisibilityGraphBuilder::mini_find(ScanScratch& scratch,
                                               std::int32_t x) const noexcept {
    auto xi = static_cast<std::size_t>(x);
    if (scratch.stamp[xi] != scratch.epoch) {
        scratch.stamp[xi] = scratch.epoch;
        scratch.parent[xi] = x;
        return x;
    }
    // Path halving; every node on the path was stamped when first linked.
    while (scratch.parent[xi] != x) {
        auto& p = scratch.parent[xi];
        p = scratch.parent[static_cast<std::size_t>(p)];
        x = p;
        xi = static_cast<std::size_t>(x);
    }
    return x;
}

/// Enumerates the scan unit of `bucket`: gathers the bucket's members into
/// the scratch slice, then pairs it with itself and its forward
/// half-neighborhood (walking the neighbors' intrusive lists directly —
/// at percolation-scale occupancy a list is 1–2 nodes, cheaper than any
/// per-step re-materialization). With kFilter, in-range pairs go through
/// the unit-local mini-DSU and only survivors reach `out` / `dsu` (the
/// cached path); without it every in-range pair does (the bypass path).
/// `out` is null on the serial bypass path, `dsu` on the sharded paths
/// (workers cannot touch the shared DSU).
template <grid::Metric M, bool kFilter>
void VisibilityGraphBuilder::scan_unit(std::int64_t bucket,
                                       std::span<const grid::Point> positions,
                                       ScanScratch& scratch, std::vector<CachedEdge>* out,
                                       DisjointSets* dsu) {
    if constexpr (kFilter) ++scratch.epoch;
    scratch.ids.clear();
    scratch.xs.clear();
    scratch.ys.clear();
    buckets_.for_each_in_bucket(bucket, [&](std::int32_t a) {
        const auto p = positions[static_cast<std::size_t>(a)];
        scratch.ids.push_back(a);
        scratch.xs.push_back(p.x);
        scratch.ys.push_back(p.y);
    });
    const auto len = scratch.ids.size();
    // Padding owed to the masked in-range kernel (range_filter.hpp).
    scratch.xs.resize(len + kRangePad);
    scratch.ys.resize(len + kRangePad);

    const auto found = [&](std::int32_t a, std::int32_t b) {
        record_pair<kFilter>(scratch, a, b, out, dsu);
    };

    // Self pairs.
    SMN_TALLY(scratch.pairs_tested +=
              len >= 2 ? static_cast<std::int64_t>(len) * (static_cast<std::int64_t>(len) - 1) / 2
                       : 0);
    for (std::size_t i = 0; i + 1 < len; ++i) {
        const auto xi = scratch.xs[i];
        const auto yi = scratch.ys[i];
        for (std::size_t j = i + 1; j < len; ++j) {
            if (within_coords<M>(xi, yi, scratch.xs[j], scratch.ys[j], radius_)) {
                found(scratch.ids[i], scratch.ids[j]);
            }
        }
    }

    /// Pairs the gathered slice against one forward neighbor's list: one
    /// masked in-range test per ≤8-lane chunk of the slice, survivors
    /// iterated in ascending lane order (= the scalar scan order).
    const auto cross = [&](std::int64_t nb) {
        buckets_.for_each_in_bucket(nb, [&](std::int32_t b) {
            SMN_TALLY(scratch.pairs_tested += static_cast<std::int64_t>(len));
            const auto p = positions[static_cast<std::size_t>(b)];
            for (std::size_t i = 0; i < len; i += kRangeLanes) {
                auto bits = in_range_mask8<M>(scratch.xs.data() + i, scratch.ys.data() + i,
                                              std::min(kRangeLanes, len - i), p.x, p.y, rad32_);
                for (; bits != 0; bits &= bits - 1) {
                    const auto lane = static_cast<std::size_t>(std::countr_zero(bits));
                    found(scratch.ids[i + lane], b);
                }
            }
        });
    };

    if (reach_ == 1) {
        // Unrolled E / SW / S / SE — the for_radius sizing's only shape;
        // neighbor existence is static geometry (edge_flags_).
        const auto flags = edge_flags_[static_cast<std::size_t>(bucket)];
        if (flags & 2u) cross(bucket + 1);
        if (flags & 4u) {
            const auto south = bucket + buckets_.buckets_x();
            if (flags & 1u) cross(south - 1);
            cross(south);
            if (flags & 2u) cross(south + 1);
        }
        return;
    }
    const auto bx_count = buckets_.buckets_x();
    const auto by_count = buckets_.buckets_y();
    const auto bx = static_cast<grid::Coord>(bucket % bx_count);
    const auto by = static_cast<grid::Coord>(bucket / bx_count);
    for (const auto& [dx, dy] : scan_fwd_) {
        const auto nx = bx + dx;
        const auto ny = by + dy;
        if (nx < 0 || nx >= bx_count || ny >= by_count) continue;
        cross(std::int64_t{ny} * bx_count + nx);
    }
}

/// The serial pass: walk the units in row-major order; replay clean units
/// from the previous arena and rescan dirty ones (leaving fresh entries),
/// or — with kBypass — rescan everything straight into the DSU with no
/// cache interaction at all. Entry stamps going stale under bypass is what
/// makes the next cached pass rescan everything once.
template <grid::Metric M, bool kBypass>
void VisibilityGraphBuilder::serial_pass(std::span<const grid::Point> positions,
                                         DisjointSets& dsu, bool force_rescan) {
    prepare_scratch(positions.size(), 1, !kBypass);
    auto& scratch = scratch_[0];
    if constexpr (!kBypass) arena_[seq_ & 1].clear();

    const auto process = [&](std::int64_t b) {
        if constexpr (kBypass) {
            ++stats_.rescanned_units;
            scan_unit<M, false>(b, positions, scratch, nullptr, &dsu);
            return;
        }
        replay_or_rescan(b, force_rescan, dsu, [&](std::vector<CachedEdge>& arena_out) {
            scan_unit<M, true>(b, positions, scratch, &arena_out, &dsu);
        });
    };

    enumerate_units();
    for (const auto b : units_) process(b);
}

/// Gathers one bucket row into `buf`: per-bucket slices in list order,
/// each agent's position read from the random-access storage exactly once.
void VisibilityGraphBuilder::gather_row(grid::Coord row, std::span<const grid::Point> positions,
                                        RowBuffer& buf) {
    const auto bx_count = buckets_.buckets_x();
    buf.off.resize(static_cast<std::size_t>(bx_count) + 1);
    // Sized once for the worst case (every agent in one row); the writes
    // below are then unchecked index stores instead of push_backs. The
    // extra kRangePad elements honor the masked in-range kernel's padding
    // contract (range_filter.hpp).
    if (buf.ids.size() < positions.size() + kRangePad) {
        buf.ids.resize(positions.size() + kRangePad);
        buf.xs.resize(positions.size() + kRangePad);
        buf.ys.resize(positions.size() + kRangePad);
    }
    const auto base = std::int64_t{row} * bx_count;
    buf.occ.clear();
    std::int32_t n = 0;
    for (grid::Coord bx = 0; bx < bx_count; ++bx) {
        const auto start = n;
        buf.off[static_cast<std::size_t>(bx)] = start;
        buckets_.for_each_in_bucket(base + bx, [&](std::int32_t a) {
            const auto p = positions[static_cast<std::size_t>(a)];
            const auto slot = static_cast<std::size_t>(n++);
            buf.ids[slot] = a;
            buf.xs[slot] = p.x;
            buf.ys[slot] = p.y;
        });
        if (n != start) buf.occ.push_back(bx);
    }
    buf.off[static_cast<std::size_t>(bx_count)] = n;
}

/// scan_unit over the rolling window: identical pair enumeration order,
/// but every slice read is L1-resident. `south_row` is null on the last
/// bucket row.
template <grid::Metric M, bool kFilter>
void VisibilityGraphBuilder::scan_unit_window(const RowBuffer& self_row,
                                              const RowBuffer* south_row, grid::Coord bx,
                                              ScanScratch& scratch,
                                              std::vector<CachedEdge>* out, DisjointSets* dsu) {
    if constexpr (kFilter) ++scratch.epoch;
    const auto bx_count = buckets_.buckets_x();
    const auto off = static_cast<std::size_t>(self_row.off[static_cast<std::size_t>(bx)]);
    const auto end = static_cast<std::size_t>(self_row.off[static_cast<std::size_t>(bx) + 1]);

    const auto found = [&](std::int32_t a, std::int32_t b) {
        record_pair<kFilter>(scratch, a, b, out, dsu);
    };

    // Self pairs.
    SMN_TALLY(scratch.pairs_tested +=
              end - off >= 2 ? static_cast<std::int64_t>(end - off) *
                                   (static_cast<std::int64_t>(end - off) - 1) / 2
                             : 0);
    for (std::size_t i = off; i + 1 < end; ++i) {
        const auto xi = self_row.xs[i];
        const auto yi = self_row.ys[i];
        for (std::size_t j = i + 1; j < end; ++j) {
            if (within_coords<M>(xi, yi, self_row.xs[j], self_row.ys[j], radius_)) {
                found(self_row.ids[i], self_row.ids[j]);
            }
        }
    }

    /// Pairs the unit's slice against a contiguous range of a row buffer,
    /// neighbor-member outer — row buffers are bucket-ordered, so the
    /// merged SW|S|SE range enumerates members in exactly the order the
    /// per-bucket cross calls of scan_unit do (thread invariance depends
    /// on this). Both shapes run the masked in-range kernel
    /// (range_filter.hpp) and walk the survivor bits in ascending lane
    /// order, so the pair order matches the scalar loops they replaced.
    const auto cross_range = [&](const RowBuffer& row, std::size_t noff, std::size_t nend) {
        SMN_TALLY(scratch.pairs_tested +=
                  static_cast<std::int64_t>(nend - noff) * static_cast<std::int64_t>(end - off));
        if (end - off == 1) {
            // Single-occupant unit (the most common bucket at percolation
            // occupancy): hoist the self coords and sweep the neighbor
            // range 8 candidates per test.
            const auto xi = self_row.xs[off];
            const auto yi = self_row.ys[off];
            const auto id = self_row.ids[off];
            for (std::size_t j = noff; j < nend; j += kRangeLanes) {
                auto bits = in_range_mask8<M>(row.xs.data() + j, row.ys.data() + j,
                                              std::min(kRangeLanes, nend - j), xi, yi, rad32_);
                for (; bits != 0; bits &= bits - 1) {
                    const auto lane = static_cast<std::size_t>(std::countr_zero(bits));
                    found(id, row.ids[j + lane]);
                }
            }
            return;
        }
        for (std::size_t j = noff; j < nend; ++j) {
            const auto xj = row.xs[j];
            const auto yj = row.ys[j];
            const auto idj = row.ids[j];
            for (std::size_t i = off; i < end; i += kRangeLanes) {
                auto bits =
                    in_range_mask8<M>(self_row.xs.data() + i, self_row.ys.data() + i,
                                      std::min(kRangeLanes, end - i), xj, yj, rad32_);
                for (; bits != 0; bits &= bits - 1) {
                    const auto lane = static_cast<std::size_t>(std::countr_zero(bits));
                    found(self_row.ids[i + lane], idj);
                }
            }
        }
    };

    if (bx + 1 < bx_count) {  // E
        cross_range(self_row,
                    static_cast<std::size_t>(self_row.off[static_cast<std::size_t>(bx) + 1]),
                    static_cast<std::size_t>(self_row.off[static_cast<std::size_t>(bx) + 2]));
    }
    if (south_row != nullptr) {  // SW | S | SE as one contiguous range
        const auto lo = static_cast<std::size_t>(bx > 0 ? bx - 1 : 0);
        const auto hi = static_cast<std::size_t>(bx + 1 < bx_count ? bx + 2 : bx + 1);
        cross_range(*south_row, static_cast<std::size_t>(south_row->off[lo]),
                    static_cast<std::size_t>(south_row->off[hi]));
    }
}

/// The dense serial pass as a rolling two-row window: row R+1 is gathered
/// while row R's units are scanned, so the whole reach-1 footprint of
/// every unit lives in two compact row buffers.
template <grid::Metric M, bool kBypass>
void VisibilityGraphBuilder::row_window_pass(std::span<const grid::Point> positions,
                                             DisjointSets& dsu, bool force_rescan) {
    prepare_scratch(positions.size(), 1, !kBypass);
    auto& scratch = scratch_[0];
    if constexpr (!kBypass) arena_[seq_ & 1].clear();

    const auto bx_count = buckets_.buckets_x();
    const auto by_count = buckets_.buckets_y();
    gather_row(0, positions, rows_[0]);
    std::int64_t units = 0;
    for (grid::Coord row = 0; row < by_count; ++row) {
        auto& self_row = rows_[static_cast<std::size_t>(row & 1)];
        RowBuffer* south_row = nullptr;
        if (row + 1 < by_count) {
            south_row = &rows_[static_cast<std::size_t>((row + 1) & 1)];
            gather_row(row + 1, positions, *south_row);
        }
        const auto base = std::int64_t{row} * bx_count;
        if constexpr (!kBypass) {
            for (const auto bx : self_row.occ) {
                replay_or_rescan(base + bx, force_rescan, dsu,
                                 [&](std::vector<CachedEdge>& arena_out) {
                                     scan_unit_window<M, true>(self_row, south_row, bx, scratch,
                                                               &arena_out, &dsu);
                                 });
            }
        } else {
            // Bypass: enumerate the row's pairs into the staging arrays —
            // same pairs in the same order as scan_unit / scan_unit_window
            // (mask-compress keeps the ascending lane order), but with the
            // branchy survivor walks and DSU unions hoisted out of the
            // per-unit control flow. One tight union loop then drains the
            // row, preserving the global union sequence.
            units += static_cast<std::int64_t>(self_row.occ.size());
            std::size_t np = 0;
            const auto grown = [&](std::size_t need) {
                if (pair_a_.size() < need) {
                    pair_a_.resize(need * 2);
                    pair_b_.resize(need * 2);
                }
            };
            for (const auto bx : self_row.occ) {
                const auto o =
                    static_cast<std::size_t>(self_row.off[static_cast<std::size_t>(bx)]);
                const auto e =
                    static_cast<std::size_t>(self_row.off[static_cast<std::size_t>(bx) + 1]);
                if (e - o == 1) {
                    // Single-occupant unit, the common bucket at percolation
                    // occupancy: two masked sweeps, E then the merged
                    // SW|S|SE range, against the hoisted self point.
                    const auto xi = self_row.xs[o];
                    const auto yi = self_row.ys[o];
                    const auto id = self_row.ids[o];
                    const auto sweep = [&](const RowBuffer& nrow, std::size_t j0,
                                           std::size_t j1) {
                        SMN_TALLY(scratch.pairs_tested += static_cast<std::int64_t>(j1 - j0));
                        for (std::size_t j = j0; j < j1; j += kRangeLanes) {
                            const auto bits =
                                in_range_mask8<M>(nrow.xs.data() + j, nrow.ys.data() + j,
                                                  std::min(kRangeLanes, j1 - j), xi, yi, rad32_);
                            grown(np + kRangeLanes);
                            util::simd::I32x8::splat(id).store(pair_a_.data() + np);
                            np += compress_store8(bits, nrow.ids.data() + j,
                                                  pair_b_.data() + np);
                        }
                    };
                    if (bx + 1 < bx_count) {
                        sweep(self_row, e,
                              static_cast<std::size_t>(
                                  self_row.off[static_cast<std::size_t>(bx) + 2]));
                    }
                    if (south_row != nullptr) {
                        const auto lo = static_cast<std::size_t>(bx > 0 ? bx - 1 : 0);
                        const auto hi = static_cast<std::size_t>(bx + 1 < bx_count ? bx + 2
                                                                                   : bx + 1);
                        sweep(*south_row, static_cast<std::size_t>(south_row->off[lo]),
                              static_cast<std::size_t>(south_row->off[hi]));
                    }
                } else {
                    // Multi-occupant unit: scalar self pairs, then the
                    // neighbor-member-outer masked sweeps over the self
                    // slice — the general cross_range shape.
                    SMN_TALLY(scratch.pairs_tested += static_cast<std::int64_t>(e - o) *
                                                      (static_cast<std::int64_t>(e - o) - 1) / 2);
                    for (std::size_t i = o; i + 1 < e; ++i) {
                        const auto xi = self_row.xs[i];
                        const auto yi = self_row.ys[i];
                        for (std::size_t j = i + 1; j < e; ++j) {
                            if (within_coords<M>(xi, yi, self_row.xs[j], self_row.ys[j],
                                                 radius_)) {
                                grown(np + 1);
                                pair_a_[np] = self_row.ids[i];
                                pair_b_[np] = self_row.ids[j];
                                ++np;
                            }
                        }
                    }
                    const auto cross = [&](const RowBuffer& nrow, std::size_t j0,
                                           std::size_t j1) {
                        SMN_TALLY(scratch.pairs_tested += static_cast<std::int64_t>(j1 - j0) *
                                                          static_cast<std::int64_t>(e - o));
                        for (std::size_t j = j0; j < j1; ++j) {
                            const auto xj = nrow.xs[j];
                            const auto yj = nrow.ys[j];
                            const auto idj = nrow.ids[j];
                            for (std::size_t i = o; i < e; i += kRangeLanes) {
                                const auto bits = in_range_mask8<M>(
                                    self_row.xs.data() + i, self_row.ys.data() + i,
                                    std::min(kRangeLanes, e - i), xj, yj, rad32_);
                                grown(np + kRangeLanes);
                                util::simd::I32x8::splat(idj).store(pair_b_.data() + np);
                                np += compress_store8(bits, self_row.ids.data() + i,
                                                      pair_a_.data() + np);
                            }
                        }
                    };
                    if (bx + 1 < bx_count) {
                        cross(self_row, e,
                              static_cast<std::size_t>(
                                  self_row.off[static_cast<std::size_t>(bx) + 2]));
                    }
                    if (south_row != nullptr) {
                        const auto lo = static_cast<std::size_t>(bx > 0 ? bx - 1 : 0);
                        const auto hi = static_cast<std::size_t>(bx + 1 < bx_count ? bx + 2
                                                                                   : bx + 1);
                        cross(*south_row, static_cast<std::size_t>(south_row->off[lo]),
                              static_cast<std::size_t>(south_row->off[hi]));
                    }
                }
            }
            // The staged pairs arrive in runs sharing their a side (one
            // sweep's survivors splat the same id), so a's root is found
            // once per run and carried through unite_root — the same link
            // sequence unite() would produce, minus the repeated finds.
            SMN_TALLY(scratch.pairs_survived += static_cast<std::int64_t>(np));
            std::int32_t last_a = -1;
            std::int32_t root_a = -1;
            for (std::size_t i = 0; i < np; ++i) {
                const auto a = pair_a_[i];
                if (a != last_a) {
                    last_a = a;
                    root_a = dsu.find(a);
                }
                root_a = dsu.unite_root(root_a, pair_b_[i]);
            }
        }
    }
    if constexpr (kBypass) stats_.rescanned_units += units;
}

/// The sharded pass: units_ is partitioned into contiguous row-major
/// ranges; workers enumerate pairs into per-shard buffers (replaying units
/// are just marked), then a single merge walks the shards in order
/// committing entries and unions — the union sequence, and so the DSU
/// state, matches the serial path exactly.
template <grid::Metric M, bool kBypass>
void VisibilityGraphBuilder::sharded_pass(std::span<const grid::Point> positions,
                                          DisjointSets& dsu, bool force_rescan) {
    prepare_scratch(positions.size(), threads_, !kBypass);
    const auto cur = static_cast<std::size_t>(seq_ & 1);
    const auto prev = cur ^ 1;
    auto& arena = arena_[cur];
    if constexpr (!kBypass) arena.clear();

    // Contiguous ranges of roughly equal unit count; work stealing evens
    // out occupancy imbalance across ~4 shards per worker.
    const auto unit_count = static_cast<std::int32_t>(units_.size());
    const auto per_shard =
        std::max<std::int32_t>(1, unit_count / static_cast<std::int32_t>(threads_ * 4));
    shards_.clear();
    for (std::int32_t begin = 0; begin < unit_count; begin += per_shard) {
        shards_.emplace_back(begin, std::min(unit_count, begin + per_shard));
    }
    const auto shard_count = static_cast<int>(shards_.size());
    if (static_cast<int>(shard_out_.size()) < shard_count) {
        shard_out_.resize(static_cast<std::size_t>(shard_count));
    }
    if (pool_ == nullptr) pool_ = std::make_unique<util::WorkerPool>(threads_);

    pool_->run(shard_count, [&](int s, int worker) {
        auto& out = shard_out_[static_cast<std::size_t>(s)];
        out.edges.clear();
        out.counts.clear();
        auto& scratch = scratch_[static_cast<std::size_t>(worker)];
        const auto [lo, hi] = shards_[static_cast<std::size_t>(s)];
        for (std::int32_t i = lo; i < hi; ++i) {
            const auto b = units_[static_cast<std::size_t>(i)];
            if constexpr (kBypass) {
                scan_unit<M, false>(b, positions, scratch, &out.edges, nullptr);
            } else if (replayable(b, force_rescan)) {
                out.counts.push_back(-1);
            } else {
                const auto start = out.edges.size();
                scan_unit<M, true>(b, positions, scratch, &out.edges, nullptr);
                out.counts.push_back(static_cast<std::int32_t>(out.edges.size() - start));
            }
        }
    });

    if constexpr (kBypass) {
        stats_.rescanned_units += unit_count;
        for (int s = 0; s < shard_count; ++s) {
            for (const auto& e : shard_out_[static_cast<std::size_t>(s)].edges) {
                dsu.unite(e.a, e.b);
            }
        }
        return;
    }
    for (int s = 0; s < shard_count; ++s) {
        const auto& out = shard_out_[static_cast<std::size_t>(s)];
        const auto [lo, hi] = shards_[static_cast<std::size_t>(s)];
        std::size_t pos = 0;
        for (std::int32_t i = lo; i < hi; ++i) {
            const auto b = units_[static_cast<std::size_t>(i)];
            const auto bi = static_cast<std::size_t>(b);
            const auto count = out.counts[static_cast<std::size_t>(i - lo)];
            if (count < 0) {
                ++stats_.replayed_units;
                SMN_TALLY(stats_.edges_replayed += entry_len_[prev][bi]);
                commit_entry(bi, arena_[prev].data() + entry_off_[prev][bi],
                             static_cast<std::size_t>(entry_len_[prev][bi]), dsu);
            } else {
                ++stats_.rescanned_units;
                SMN_TALLY(stats_.edges_cached += count);
                commit_entry(bi, out.edges.data() + pos, static_cast<std::size_t>(count), dsu);
                pos += static_cast<std::size_t>(count);
            }
        }
    }
}

void VisibilityGraphBuilder::build_naive(std::span<const grid::Point> positions,
                                         std::int64_t radius, grid::Metric metric,
                                         DisjointSets& dsu) {
    dsu.reset(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (std::size_t j = i + 1; j < positions.size(); ++j) {
            if (grid::within(positions[i], positions[j], radius, metric)) {
                dsu.unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j));
            }
        }
    }
}

void component_stats(DisjointSets& dsu, ComponentStats& out,
                     std::vector<std::int64_t>& root_size_scratch) {
    out.component_count = 0;
    out.max_size = 0;
    out.mean_size = 0.0;
    out.largest_fraction = 0.0;
    out.size_histogram.clear();
    const auto k = dsu.element_count();
    if (k == 0) return;

    root_size_scratch.assign(k, 0);
    for (std::size_t a = 0; a < k; ++a) {
        ++root_size_scratch[static_cast<std::size_t>(dsu.find(static_cast<std::int32_t>(a)))];
    }

    std::int64_t count = 0;
    std::int64_t max_size = 0;
    for (const auto s : root_size_scratch) {
        if (s == 0) continue;
        ++count;
        max_size = std::max(max_size, s);
    }
    out.component_count = count;
    out.max_size = max_size;
    out.mean_size = static_cast<double>(k) / static_cast<double>(count);
    out.largest_fraction = static_cast<double>(max_size) / static_cast<double>(k);

    out.size_histogram.assign(static_cast<std::size_t>(max_size) + 1, 0);
    for (const auto s : root_size_scratch) {
        if (s > 0) ++out.size_histogram[static_cast<std::size_t>(s)];
    }
}

ComponentStats component_stats(DisjointSets& dsu) {
    ComponentStats stats;
    std::vector<std::int64_t> scratch;
    component_stats(dsu, stats, scratch);
    return stats;
}

void component_labels(DisjointSets& dsu, std::vector<std::int32_t>& out) {
    out.resize(dsu.element_count());
    for (std::size_t a = 0; a < out.size(); ++a) {
        out[a] = dsu.find(static_cast<std::int32_t>(a));
    }
}

std::vector<std::int32_t> component_labels(DisjointSets& dsu) {
    std::vector<std::int32_t> labels;
    component_labels(dsu, labels);
    return labels;
}

}  // namespace smn::graph
