// visibility.hpp — the dynamic communication graph G_t(r).
//
// Given the agents' positions at time t and a transmission radius r, the
// visibility graph has an edge between two agents iff their Manhattan
// distance is ≤ r (paper Sec. 2; the metric is configurable for ablation).
// We never materialize the full edge set: the consumers only need
// *connected components* (rumors flood a component within the step), so
// the builder unions agents directly into a DisjointSets via the spatial
// index.
//
//  * r = 0  — co-location only; uses OccupancyMap, O(k).
//  * r ≥ 1  — BucketIndex with bucket side r; each scan *unit* is an
//             occupied bucket paired with itself and its forward
//             half-neighborhood (E, SW, S, SE), so every unordered
//             in-range pair is covered by exactly one unit.
//
// Dirty-region component pass (PR 4): per scan unit the builder caches the
// *reduced spanning edges* — the subset of the unit's in-range pairs that
// survive a unit-local mini-DSU, at most (agents touched − 1) edges — in a
// compact double-buffered edge arena. On rebuild_components(), a unit
// whose scan footprint (its bucket + forward neighbors) contains no bucket
// dirtied since the previous rebuild replays its cached edges in O(edges);
// only dirty footprints re-enumerate pairs. The resulting partition is
// identical because a spanning subset of each unit's pair edges yields the
// same DSU components (property-tested against build_naive). When the
// dirty fraction is high (the all-move model dirties nearly every bucket
// every step) the pass adaptively *bypasses* the cache — no mini-DSU, no
// arena writes, no taint expansion, pairs united straight into the DSU —
// because replay could save nothing; the switch depends only on the
// (deterministic) dirty set, so trajectories are unaffected.
//
// The scan can be sharded across an in-process worker pool
// (SMN_STEP_THREADS, default 1): units are partitioned into contiguous
// row-major shards, workers enumerate pairs into per-shard edge buffers,
// and a single merge walks the shards in fixed row order performing the
// unions — the DSU sees the same union sequence at any thread count, so
// every trajectory is bit-identical (enforced by determinism tests).
//
// Two usage protocols:
//  * build() — one-shot: (re)index the positions and compute components.
//  * incremental — build() (or any prior build) indexes the storage once;
//    afterwards call begin_step() before a step's moves, report every node
//    change via on_move(), and call rebuild_components() to recompute the
//    partition from the maintained index + edge cache. Components cannot
//    be maintained under edge *deletions*, so the DSU is always
//    recomputed; the savings are the spatial index and the clean-region
//    replay. (begin_step() is optional when every rebuild consumes the
//    moves since the previous one, as rebuild_components() closes the
//    dirty epoch itself.)
//
// ComponentStats summarizes a partition: component count, maximum size
// ("islands" of Definition 2 / Lemma 6), size histogram, and the largest
// component's fraction of all agents (the percolation order parameter).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/dsu.hpp"
#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "obs/tally.hpp"
#include "spatial/bucket_index.hpp"
#include "spatial/occupancy.hpp"
#include "util/worker_pool.hpp"

namespace smn::graph {

/// Builds connected components of G_t(r) into `dsu` (which is reset).
/// Reusable across steps: keeps its spatial structures, edge cache and
/// worker pool allocated.
class VisibilityGraphBuilder {
public:
    /// Cumulative scan telemetry. The unit- and pass-level counts are
    /// maintained unconditionally (tests assert on them in every build
    /// configuration); the per-pair and per-edge tallies compile out under
    /// -DSMN_DISABLE_OBS and then read zero.
    struct ScanStats {
        std::int64_t passes{0};            ///< component passes (r >= 1)
        std::int64_t bypass_passes{0};     ///< passes that bypassed the edge cache
        std::int64_t replayed_units{0};    ///< units replayed from the cache
        std::int64_t rescanned_units{0};   ///< units re-enumerated
        std::int64_t dirty_buckets{0};     ///< dirty buckets consumed across passes
        std::int64_t pairs_tested{0};      ///< candidate pairs distance-tested
        std::int64_t pairs_survived{0};    ///< in-range pairs reaching the sink
        std::int64_t edges_cached{0};      ///< spanning edges written by rescans
        std::int64_t edges_replayed{0};    ///< spanning edges replayed from cache
    };

    /// `radius` is the transmission radius r >= 0; `metric` defaults to the
    /// paper's Manhattan metric. The intra-step thread count is read from
    /// SMN_STEP_THREADS here (util::step_threads()).
    VisibilityGraphBuilder(const grid::Grid2D& grid, std::int64_t radius,
                           grid::Metric metric = grid::Metric::kManhattan);

    /// Computes the components of G_t(r) for the given positions,
    /// (re)indexing them from scratch. The positions storage must stay
    /// alive and in place for as long as the incremental protocol below is
    /// used. Postcondition: dsu.element_count() == positions.size().
    void build(std::span<const grid::Point> positions, DisjointSets& dsu);

    /// Incremental protocol, step 0: open a fresh dirty epoch before the
    /// step's moves. Optional when rebuild_components() runs after every
    /// batch of moves (it closes the epoch itself).
    void begin_step() noexcept {
        if (radius_ >= 1) buckets_.begin_step();
    }

    /// Incremental protocol, step 1: tell the index one agent changed node.
    /// Call after writing the new position into the indexed storage. O(1).
    void on_move(std::int32_t agent, grid::Point from, grid::Point to) {
        if (radius_ >= 1) buckets_.move(agent, from, to);
    }

    /// Incremental protocol, step 2: recompute the components from the
    /// incrementally maintained index and the spanning-edge cache.
    /// `positions` must be the same storage last passed to build(), with
    /// every node change since then reported through on_move(). (For r = 0
    /// this simply delegates to build — the occupancy rebuild is already
    /// O(k) with a small constant.) Closes the dirty epoch.
    void rebuild_components(std::span<const grid::Point> positions, DisjointSets& dsu);

    [[nodiscard]] std::int64_t radius() const noexcept { return radius_; }
    [[nodiscard]] grid::Metric metric() const noexcept { return metric_; }

    /// Intra-step scan threads in use (SMN_STEP_THREADS at construction).
    [[nodiscard]] int scan_threads() const noexcept { return threads_; }

    /// Enables wall-clock attribution of the rebuild's index-prep portion
    /// (unit enumeration + taint expansion); read it via prep_seconds().
    void set_timing(bool on) noexcept { timing_ = on; }

    /// Cumulative seconds spent in index prep across all rebuilds (0 until
    /// set_timing(true)).
    [[nodiscard]] double prep_seconds() const noexcept { return prep_seconds_; }

    /// Scan units replayed from the edge cache / rescanned since
    /// construction (diagnostics; also exercised by tests).
    [[nodiscard]] std::int64_t replayed_units() const noexcept { return stats_.replayed_units; }
    [[nodiscard]] std::int64_t rescanned_units() const noexcept {
        return stats_.rescanned_units;
    }

    /// Full cumulative scan telemetry (see ScanStats).
    [[nodiscard]] const ScanStats& scan_stats() const noexcept { return stats_; }

    /// Telemetry of the underlying bucket index (zero-valued for r = 0).
    [[nodiscard]] const spatial::BucketIndex::Stats& index_stats() const noexcept {
        return buckets_.stats();
    }

    /// Occupied scan units right now (0 for r = 0, where there are no scan
    /// units — the occupancy path visits cells, not buckets).
    [[nodiscard]] std::int64_t occupied_units() const noexcept {
        return radius_ >= 1 ? static_cast<std::int64_t>(buckets_.occupied_bucket_count()) : 0;
    }

    /// Brute-force O(k²) reference builder used by tests.
    static void build_naive(std::span<const grid::Point> positions, std::int64_t radius,
                            grid::Metric metric, DisjointSets& dsu);

private:
    /// One cached spanning edge (agent ids).
    struct CachedEdge {
        std::int32_t a;
        std::int32_t b;
    };

    /// Per-worker scratch: the gathered slice of the unit's own bucket
    /// plus an epoch-stamped mini-DSU over agent ids (local to one scan
    /// unit at a time; only used on the cached path).
    struct ScanScratch {
        std::vector<std::int32_t> ids;
        std::vector<grid::Coord> xs;
        std::vector<grid::Coord> ys;
        std::vector<std::int32_t> parent;
        std::vector<std::uint64_t> stamp;
        std::uint64_t epoch{0};
        // Per-worker pair tallies, drained into stats_ after each pass
        // (plain fields: each worker owns one scratch for the pass).
        std::int64_t pairs_tested{0};
        std::int64_t pairs_survived{0};
    };

    /// Per-shard rescan output: surviving edges plus one count per bucket
    /// in the shard's range (-1 = replay from the previous arena).
    struct ShardOutput {
        std::vector<CachedEdge> edges;
        std::vector<std::int32_t> counts;
    };

    /// One gathered row of buckets for the rolling-window serial scan:
    /// per-bucket slices (off[bx]..off[bx+1]) of ids and coordinates, in
    /// list order. Two of these cover a unit's whole reach-1 footprint and
    /// stay L1-resident, so each agent's position is loaded from the
    /// random-access positions array exactly once per step.
    struct RowBuffer {
        std::vector<std::int32_t> off;  ///< size buckets_x + 1, prefix offsets
        std::vector<std::int32_t> ids;
        std::vector<grid::Coord> xs;
        std::vector<grid::Coord> ys;
        std::vector<grid::Coord> occ;  ///< the row's occupied bx, ascending
    };

    void component_pass(std::span<const grid::Point> positions, DisjointSets& dsu,
                        bool force_rescan);
    void expand_taint();
    template <grid::Metric M, bool kBypass>
    void serial_pass(std::span<const grid::Point> positions, DisjointSets& dsu,
                     bool force_rescan);
    template <grid::Metric M, bool kBypass>
    void row_window_pass(std::span<const grid::Point> positions, DisjointSets& dsu,
                         bool force_rescan);
    void gather_row(grid::Coord row, std::span<const grid::Point> positions, RowBuffer& buf);
    template <grid::Metric M, bool kFilter>
    void scan_unit_window(const RowBuffer& self_row, const RowBuffer* south_row,
                          grid::Coord bx, ScanScratch& scratch, std::vector<CachedEdge>* out,
                          DisjointSets* dsu);
    template <grid::Metric M, bool kBypass>
    void sharded_pass(std::span<const grid::Point> positions, DisjointSets& dsu,
                      bool force_rescan);
    template <grid::Metric M, bool kFilter>
    void scan_unit(std::int64_t bucket, std::span<const grid::Point> positions,
                   ScanScratch& scratch, std::vector<CachedEdge>* out, DisjointSets* dsu);
    void enumerate_units();
    void prepare_scratch(std::size_t k, int count, bool mini);
    template <bool kFilter>
    void record_pair(ScanScratch& scratch, std::int32_t a, std::int32_t b,
                     std::vector<CachedEdge>* out, DisjointSets* dsu);
    void commit_entry(std::size_t bucket, const CachedEdge* edges, std::size_t count,
                      DisjointSets& dsu);

    /// The shared replay-or-rescan step of the cached serial passes:
    /// replay `bucket`'s previous entry if its footprint is clean, else
    /// run `rescan(arena)` (which must append the unit's surviving edges
    /// to the passed arena) and commit the fresh entry around it. All
    /// entry bookkeeping lives here so the passes cannot diverge.
    template <typename Rescan>
    void replay_or_rescan(std::int64_t bucket, bool force_rescan, DisjointSets& dsu,
                          Rescan&& rescan) {
        const auto bi = static_cast<std::size_t>(bucket);
        const auto cur = static_cast<std::size_t>(seq_ & 1);
        if (replayable(bucket, force_rescan)) {
            ++stats_.replayed_units;
            const auto prev = cur ^ 1;
            SMN_TALLY(stats_.edges_replayed += entry_len_[prev][bi]);
            commit_entry(bi, arena_[prev].data() + entry_off_[prev][bi],
                         static_cast<std::size_t>(entry_len_[prev][bi]), dsu);
            return;
        }
        ++stats_.rescanned_units;
        auto& arena = arena_[cur];
        const auto start = arena.size();
        entry_off_[cur][bi] = static_cast<std::int32_t>(start);
        rescan(arena);
        entry_len_[cur][bi] = static_cast<std::int32_t>(arena.size() - start);
        SMN_TALLY(stats_.edges_cached += entry_len_[cur][bi]);
        entry_stamp_[bi] = seq_;
    }
    [[nodiscard]] bool replayable(std::int64_t bucket, bool force_rescan) const noexcept {
        return !force_rescan &&
               entry_stamp_[static_cast<std::size_t>(bucket)] == seq_ - 1 &&
               taint_stamp_[static_cast<std::size_t>(bucket)] != seq_;
    }
    [[nodiscard]] std::int32_t mini_find(ScanScratch& scratch, std::int32_t x) const noexcept;

    grid::Grid2D grid_;
    std::int64_t radius_;
    grid::Coord rad32_;  ///< radius clamped to int32 for the lane kernels
    grid::Metric metric_;
    spatial::OccupancyMap occupancy_;  ///< used when radius == 0
    spatial::BucketIndex buckets_;     ///< used when radius >= 1

    // Scan geometry: forward half-neighborhood offsets (scanned) and their
    // mirror (tainted by a dirty bucket), precomputed for the builder's
    // radius; the reach-1 case (E, SW, S, SE) takes an unrolled path with
    // per-bucket boundary flags, which are static geometry.
    grid::Coord reach_{1};
    std::vector<std::pair<grid::Coord, grid::Coord>> scan_fwd_;
    std::vector<std::pair<grid::Coord, grid::Coord>> taint_back_;
    std::vector<std::uint8_t> edge_flags_;  ///< bucket -> W/E/S-neighbor existence

    // Spanning-edge cache: double-buffered arena + per-bucket entries.
    std::vector<CachedEdge> arena_[2];
    std::vector<std::int32_t> entry_off_[2];
    std::vector<std::int32_t> entry_len_[2];
    std::vector<std::uint64_t> entry_stamp_;  ///< bucket -> seq of last entry
    std::vector<std::uint64_t> taint_stamp_;  ///< bucket -> seq of last taint
    std::uint64_t seq_{0};                    ///< rebuild sequence number

    // Sharded scan (SMN_STEP_THREADS > 1).
    int threads_{1};
    std::unique_ptr<util::WorkerPool> pool_;
    std::vector<std::int64_t> units_;   ///< occupied buckets, row-major order
    RowBuffer rows_[2];                 ///< rolling window of the serial scan
    std::vector<std::int32_t> pair_a_;  ///< bypass pair staging, first ids
    std::vector<std::int32_t> pair_b_;  ///< bypass pair staging, second ids
    std::vector<ScanScratch> scratch_;  ///< per worker (index 0 on the serial path)
    std::vector<ShardOutput> shard_out_;                         ///< per shard
    std::vector<std::pair<std::int32_t, std::int32_t>> shards_;  ///< [begin,end) in units_

    bool timing_{false};
    double prep_seconds_{0.0};
    ScanStats stats_;  ///< cumulative scan telemetry (see ScanStats)
};

/// Summary of a component partition of k agents.
struct ComponentStats {
    std::int64_t component_count{0};   ///< number of connected components
    std::int64_t max_size{0};          ///< largest component ("island") size
    double mean_size{0.0};             ///< average component size
    double largest_fraction{0.0};      ///< max_size / k, percolation order parameter
    std::vector<std::int64_t> size_histogram;  ///< index s → #components of size s (0 unused)

    /// Number of isolated agents (components of size 1).
    [[nodiscard]] std::int64_t singletons() const noexcept {
        return size_histogram.size() > 1 ? size_histogram[1] : 0;
    }
};

/// Computes statistics of the partition currently held by `dsu` into `out`,
/// reusing out.size_histogram and the caller-provided per-root size scratch
/// (resized as needed) — the allocation-free form for per-step observers.
void component_stats(DisjointSets& dsu, ComponentStats& out,
                     std::vector<std::int64_t>& root_size_scratch);

/// Allocating convenience form of the above.
[[nodiscard]] ComponentStats component_stats(DisjointSets& dsu);

/// Extracts the component label (root id) of each agent into `out` (resized
/// to the element count). Labels are root agent ids, not compacted.
void component_labels(DisjointSets& dsu, std::vector<std::int32_t>& out);

/// Allocating convenience form of the above.
[[nodiscard]] std::vector<std::int32_t> component_labels(DisjointSets& dsu);

}  // namespace smn::graph
