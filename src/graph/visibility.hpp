// visibility.hpp — the dynamic communication graph G_t(r).
//
// Given the agents' positions at time t and a transmission radius r, the
// visibility graph has an edge between two agents iff their Manhattan
// distance is ≤ r (paper Sec. 2; the metric is configurable for ablation).
// We never materialize edges: the consumers only need *connected
// components* (rumors flood a component within the step), so the builder
// unions agents directly into a DisjointSets via the spatial index.
//
//  * r = 0  — co-location only; uses OccupancyMap, O(k).
//  * r ≥ 1  — BucketIndex with bucket side r, enumerating each unordered
//             pair exactly once via the half-neighborhood scan; expected
//             O(k) below and near the percolation point.
//
// Two usage protocols:
//  * build() — one-shot: (re)index the positions and compute components.
//  * incremental — build() (or any prior build) indexes the storage once;
//    afterwards report every node change via on_move() and call
//    rebuild_components() to recompute the partition without re-linking
//    all k agents. Components cannot be maintained under edge *deletions*,
//    so the DSU is always recomputed; the savings are in the spatial index.
//
// ComponentStats summarizes a partition: component count, maximum size
// ("islands" of Definition 2 / Lemma 6), size histogram, and the largest
// component's fraction of all agents (the percolation order parameter).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dsu.hpp"
#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "spatial/bucket_index.hpp"
#include "spatial/occupancy.hpp"

namespace smn::graph {

/// Builds connected components of G_t(r) into `dsu` (which is reset).
/// Reusable across steps: keeps its spatial structures allocated.
class VisibilityGraphBuilder {
public:
    /// `radius` is the transmission radius r >= 0; `metric` defaults to the
    /// paper's Manhattan metric.
    VisibilityGraphBuilder(const grid::Grid2D& grid, std::int64_t radius,
                           grid::Metric metric = grid::Metric::kManhattan);

    /// Computes the components of G_t(r) for the given positions,
    /// (re)indexing them from scratch. The positions storage must stay
    /// alive and in place for as long as the incremental protocol below is
    /// used. Postcondition: dsu.element_count() == positions.size().
    void build(std::span<const grid::Point> positions, DisjointSets& dsu);

    /// Incremental protocol, step 1: tell the index one agent changed node.
    /// Call after writing the new position into the indexed storage. O(1).
    void on_move(std::int32_t agent, grid::Point from, grid::Point to) noexcept {
        if (radius_ >= 1) buckets_.move(agent, from, to);
    }

    /// Incremental protocol, step 2: recompute the components from the
    /// incrementally maintained index. `positions` must be the same storage
    /// last passed to build(), with every node change since then reported
    /// through on_move(). (For r = 0 this simply delegates to build —
    /// the occupancy rebuild is already O(k) with a small constant.)
    void rebuild_components(std::span<const grid::Point> positions, DisjointSets& dsu);

    [[nodiscard]] std::int64_t radius() const noexcept { return radius_; }
    [[nodiscard]] grid::Metric metric() const noexcept { return metric_; }

    /// Brute-force O(k²) reference builder used by tests.
    static void build_naive(std::span<const grid::Point> positions, std::int64_t radius,
                            grid::Metric metric, DisjointSets& dsu);

private:
    void unite_pairs(DisjointSets& dsu);

    grid::Grid2D grid_;
    std::int64_t radius_;
    grid::Metric metric_;
    spatial::OccupancyMap occupancy_;  ///< used when radius == 0
    spatial::BucketIndex buckets_;     ///< used when radius >= 1
};

/// Summary of a component partition of k agents.
struct ComponentStats {
    std::int64_t component_count{0};   ///< number of connected components
    std::int64_t max_size{0};          ///< largest component ("island") size
    double mean_size{0.0};             ///< average component size
    double largest_fraction{0.0};      ///< max_size / k, percolation order parameter
    std::vector<std::int64_t> size_histogram;  ///< index s → #components of size s (index 0 unused)

    /// Number of isolated agents (components of size 1).
    [[nodiscard]] std::int64_t singletons() const noexcept {
        return size_histogram.size() > 1 ? size_histogram[1] : 0;
    }
};

/// Computes statistics of the partition currently held by `dsu` into `out`,
/// reusing out.size_histogram and the caller-provided per-root size scratch
/// (resized as needed) — the allocation-free form for per-step observers.
void component_stats(DisjointSets& dsu, ComponentStats& out,
                     std::vector<std::int64_t>& root_size_scratch);

/// Allocating convenience form of the above.
[[nodiscard]] ComponentStats component_stats(DisjointSets& dsu);

/// Extracts the component label (root id) of each agent into `out` (resized
/// to the element count). Labels are root agent ids, not compacted.
void component_labels(DisjointSets& dsu, std::vector<std::int32_t>& out);

/// Allocating convenience form of the above.
[[nodiscard]] std::vector<std::int32_t> component_labels(DisjointSets& dsu);

}  // namespace smn::graph
