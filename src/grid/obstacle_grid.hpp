// obstacle_grid.hpp — planar domains with mobility barriers.
//
// The paper closes (Sec. 4): "We are working now on extending our modeling
// and analysis techniques to handle more complex planar domains that
// include both communication and mobility barriers." ObstacleGrid is that
// domain: a rectangular grid where a subset of nodes is blocked. Walks
// cannot enter blocked nodes; because the lazy 1/5 kernel keeps per-edge
// flow symmetric on ANY subgraph of the grid with max degree 4, the
// uniform distribution over *open* nodes remains stationary — the paper's
// key modelling property survives the extension.
//
// The interface mirrors Grid2D (same member names), so walk::step<> and
// the occupancy machinery work unchanged via templates.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "grid/grid.hpp"
#include "grid/point.hpp"
#include "rng/rng.hpp"

namespace smn::grid {

/// Bounded grid with blocked ("wall") nodes.
class ObstacleGrid {
public:
    static constexpr int kMaxDegree = 4;

    /// All nodes initially open.
    ObstacleGrid(Coord width, Coord height)
        : base_{width, height},
          blocked_(static_cast<std::size_t>(base_.size()), 0),
          open_count_{base_.size()} {}

    static ObstacleGrid square(Coord side) { return ObstacleGrid{side, side}; }

    /// Square grid with a vertical wall at column `wall_x`, open only at
    /// rows [gap_lo, gap_hi). gap_lo == gap_hi seals the wall completely.
    static ObstacleGrid with_vertical_wall(Coord side, Coord wall_x, Coord gap_lo,
                                           Coord gap_hi) {
        if (wall_x < 0 || wall_x >= side) {
            throw std::invalid_argument("ObstacleGrid: wall_x out of range");
        }
        if (gap_lo > gap_hi || gap_lo < 0 || gap_hi > side) {
            throw std::invalid_argument("ObstacleGrid: bad gap range");
        }
        ObstacleGrid g = square(side);
        for (Coord y = 0; y < side; ++y) {
            if (y < gap_lo || y >= gap_hi) g.block(Point{wall_x, y});
        }
        return g;
    }

    [[nodiscard]] Coord width() const noexcept { return base_.width(); }
    [[nodiscard]] Coord height() const noexcept { return base_.height(); }

    /// Node-id space (includes blocked nodes, so dense per-node arrays work).
    [[nodiscard]] std::int64_t size() const noexcept { return base_.size(); }

    /// Number of open (walkable) nodes.
    [[nodiscard]] std::int64_t open_count() const noexcept { return open_count_; }

    /// A point is "contained" iff in-bounds AND open.
    [[nodiscard]] bool contains(Point p) const noexcept {
        return base_.contains(p) && !blocked_[static_cast<std::size_t>(base_.node_id(p))];
    }

    [[nodiscard]] bool in_bounds(Point p) const noexcept { return base_.contains(p); }
    [[nodiscard]] bool is_blocked(Point p) const noexcept {
        assert(base_.contains(p));
        return blocked_[static_cast<std::size_t>(base_.node_id(p))] != 0;
    }

    /// Blocks an in-bounds node (idempotent).
    void block(Point p) {
        if (!base_.contains(p)) throw std::invalid_argument("ObstacleGrid::block: off-grid");
        auto& flag = blocked_[static_cast<std::size_t>(base_.node_id(p))];
        if (!flag) {
            flag = 1;
            --open_count_;
        }
    }

    [[nodiscard]] NodeId node_id(Point p) const noexcept { return base_.node_id(p); }
    [[nodiscard]] Point point_of(NodeId id) const noexcept { return base_.point_of(id); }

    /// Open neighbors only — the walk's transition structure.
    int neighbors(Point p, std::span<Point, kMaxDegree> out) const noexcept {
        assert(contains(p));
        std::array<Point, kMaxDegree> all;  // in-bounds neighbors of the base grid
        const int total = base_.neighbors(p, std::span<Point, kMaxDegree>{all});
        int count = 0;
        for (int i = 0; i < total; ++i) {
            const auto q = all[static_cast<std::size_t>(i)];
            if (!blocked_[static_cast<std::size_t>(base_.node_id(q))]) {
                out[static_cast<std::size_t>(count++)] = q;
            }
        }
        return count;
    }

    /// Number of open neighbors (the walk's n_v on this domain).
    [[nodiscard]] int degree(Point p) const noexcept {
        std::array<Point, kMaxDegree> scratch;
        return neighbors(p, std::span<Point, kMaxDegree>{scratch});
    }

    /// Uniformly random open node (rejection sampling; open fraction must
    /// be positive).
    [[nodiscard]] Point random_open_node(rng::Rng& rng) const {
        if (open_count_ == 0) throw std::logic_error("ObstacleGrid: no open nodes");
        for (;;) {
            const auto id =
                static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(base_.size())));
            if (!blocked_[static_cast<std::size_t>(id)]) return base_.point_of(id);
        }
    }

    /// True iff the open region is a single connected component (BFS).
    [[nodiscard]] bool open_region_connected() const;

    [[nodiscard]] const Grid2D& base() const noexcept { return base_; }

private:
    Grid2D base_;
    std::vector<std::uint8_t> blocked_;
    std::int64_t open_count_;
};

inline bool ObstacleGrid::open_region_connected() const {
    if (open_count_ == 0) return true;
    // Find a seed.
    NodeId seed = -1;
    for (NodeId id = 0; id < size(); ++id) {
        if (!blocked_[static_cast<std::size_t>(id)]) {
            seed = id;
            break;
        }
    }
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(size()), 0);
    std::vector<NodeId> queue{seed};
    seen[static_cast<std::size_t>(seed)] = 1;
    std::int64_t reached = 0;
    std::array<Point, kMaxDegree> nbr;
    while (!queue.empty()) {
        const auto id = queue.back();
        queue.pop_back();
        ++reached;
        const int count = neighbors(point_of(id), std::span<Point, kMaxDegree>{nbr});
        for (int i = 0; i < count; ++i) {
            const auto next = node_id(nbr[static_cast<std::size_t>(i)]);
            if (!seen[static_cast<std::size_t>(next)]) {
                seen[static_cast<std::size_t>(next)] = 1;
                queue.push_back(next);
            }
        }
    }
    return reached == open_count_;
}

}  // namespace smn::grid
