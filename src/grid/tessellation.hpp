// tessellation.hpp — partition of the grid into ℓ×ℓ cells.
//
// The upper-bound proof (Sec. 3.1) tessellates G_n into cells of side
// ℓ = sqrt(14 n log³n / (c₃ k)) and tracks when each cell is first reached
// by an informed agent ("explored"). The Tessellation class implements the
// same partition and is used by the frontier/coverage observers and by the
// cell-exploration experiment (E17 uses it indirectly).
//
// Cells on the top/right border may be smaller than ℓ when ℓ does not
// divide the grid side — exactly as in the paper's tessellation, which only
// needs the *at most* ℓ×ℓ property.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "grid/grid.hpp"
#include "grid/point.hpp"

namespace smn::grid {

/// Index of a tessellation cell.
using CellId = std::int64_t;

/// Partition of a Grid2D into square cells of side `cell_side` (border
/// cells may be truncated).
class Tessellation {
public:
    /// Throws std::invalid_argument if cell_side < 1.
    Tessellation(const Grid2D& grid, Coord cell_side)
        : grid_{grid}, cell_side_{cell_side} {
        if (cell_side < 1) {
            throw std::invalid_argument("Tessellation: cell_side must be >= 1");
        }
        cells_x_ = (grid.width() + cell_side - 1) / cell_side;
        cells_y_ = (grid.height() + cell_side - 1) / cell_side;
    }

    [[nodiscard]] Coord cell_side() const noexcept { return cell_side_; }
    [[nodiscard]] Coord cells_x() const noexcept { return cells_x_; }
    [[nodiscard]] Coord cells_y() const noexcept { return cells_y_; }

    /// Total number of cells.
    [[nodiscard]] std::int64_t cell_count() const noexcept {
        return std::int64_t{cells_x_} * cells_y_;
    }

    /// Cell coordinates (cx, cy) of a grid point.
    [[nodiscard]] Point cell_coords(Point p) const noexcept {
        assert(grid_.contains(p));
        return Point{static_cast<Coord>(p.x / cell_side_), static_cast<Coord>(p.y / cell_side_)};
    }

    /// Dense cell id of the cell containing p.
    [[nodiscard]] CellId cell_of(Point p) const noexcept {
        const Point c = cell_coords(p);
        return std::int64_t{c.y} * cells_x_ + c.x;
    }

    /// Lower-left grid node of cell (cx, cy).
    [[nodiscard]] Point cell_origin(Point cell) const noexcept {
        return Point{static_cast<Coord>(cell.x * cell_side_),
                     static_cast<Coord>(cell.y * cell_side_)};
    }

    /// Central grid node of a cell, clamped into the grid (the paper's
    /// "center node v of Q" in Lemma 5).
    [[nodiscard]] Point cell_center(Point cell) const noexcept {
        const Point origin = cell_origin(cell);
        return grid_.clamp(Point{static_cast<Coord>(origin.x + cell_side_ / 2),
                                 static_cast<Coord>(origin.y + cell_side_ / 2)});
    }

    /// Cell coordinates from a dense cell id.
    [[nodiscard]] Point cell_point(CellId id) const noexcept {
        assert(id >= 0 && id < cell_count());
        return Point{static_cast<Coord>(id % cells_x_), static_cast<Coord>(id / cells_x_)};
    }

    /// Writes the 4-neighborhood of a cell (in cell coordinates) into `out`;
    /// returns the count. Used by the cell-exploration process of Lemma 5.
    int cell_neighbors(Point cell, std::span<Point, 4> out) const noexcept {
        int count = 0;
        if (cell.x > 0) out[static_cast<std::size_t>(count++)] = Point{static_cast<Coord>(cell.x - 1), cell.y};
        if (cell.x + 1 < cells_x_) out[static_cast<std::size_t>(count++)] = Point{static_cast<Coord>(cell.x + 1), cell.y};
        if (cell.y > 0) out[static_cast<std::size_t>(count++)] = Point{cell.x, static_cast<Coord>(cell.y - 1)};
        if (cell.y + 1 < cells_y_) out[static_cast<std::size_t>(count++)] = Point{cell.x, static_cast<Coord>(cell.y + 1)};
        return count;
    }

    /// Number of grid nodes in a (possibly truncated border) cell.
    [[nodiscard]] std::int64_t cell_node_count(Point cell) const noexcept {
        const Point origin = cell_origin(cell);
        const std::int64_t w =
            std::min<std::int64_t>(cell_side_, grid_.width() - origin.x);
        const std::int64_t h =
            std::min<std::int64_t>(cell_side_, grid_.height() - origin.y);
        return w * h;
    }

    [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }

private:
    Grid2D grid_;
    Coord cell_side_;
    Coord cells_x_{0};
    Coord cells_y_{0};
};

}  // namespace smn::grid
