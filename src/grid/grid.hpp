// grid.hpp — the bounded 2-D grid G_n the agents walk on.
//
// The paper's domain is an n-node square grid (side √n) with *boundaries*
// (not a torus): Lemma 1 invokes the reflection principle precisely to deal
// with walks hitting the boundary. Grid2D supports rectangles as well; the
// square case is the paper's.
//
// Nodes are addressed both as Points and as dense ids in [0, size()), which
// the simulators use to index per-node arrays (occupancy, visit marks).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "grid/point.hpp"

namespace smn::grid {

/// Dense node identifier: id = y * width + x, in [0, width*height).
using NodeId = std::int64_t;

/// Bounded rectangular grid with 4-neighborhood.
class Grid2D {
public:
    /// Maximum degree of any node (interior nodes).
    static constexpr int kMaxDegree = 4;

    /// Constructs a `width × height` grid. Throws std::invalid_argument if
    /// either dimension is < 1.
    Grid2D(Coord width, Coord height)
        : width_{width}, height_{height} {
        if (width < 1 || height < 1) {
            throw std::invalid_argument("Grid2D: dimensions must be >= 1, got " +
                                        std::to_string(width) + "x" + std::to_string(height));
        }
    }

    /// Square grid of `side × side` nodes (the paper's G_n with n = side²).
    static Grid2D square(Coord side) { return Grid2D{side, side}; }

    /// Smallest square grid with at least `n` nodes (side = ceil(sqrt(n))).
    static Grid2D with_at_least(std::int64_t n);

    [[nodiscard]] Coord width() const noexcept { return width_; }
    [[nodiscard]] Coord height() const noexcept { return height_; }

    /// Total number of nodes n.
    [[nodiscard]] std::int64_t size() const noexcept {
        return std::int64_t{width_} * height_;
    }

    /// Graph diameter under the grid (= Manhattan) metric:
    /// (width−1) + (height−1); the paper quotes 2√n − 2 for the square.
    [[nodiscard]] std::int64_t diameter() const noexcept {
        return std::int64_t{width_} - 1 + std::int64_t{height_} - 1;
    }

    [[nodiscard]] bool contains(Point p) const noexcept {
        return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
    }

    /// Dense id of a contained point.
    [[nodiscard]] NodeId node_id(Point p) const noexcept {
        assert(contains(p));
        return std::int64_t{p.y} * width_ + p.x;
    }

    /// Inverse of node_id.
    [[nodiscard]] Point point_of(NodeId id) const noexcept {
        assert(id >= 0 && id < size());
        return Point{static_cast<Coord>(id % width_), static_cast<Coord>(id / width_)};
    }

    /// Number of grid neighbors of p: 2 (corner), 3 (edge), 4 (interior).
    /// This is the paper's n_v.
    [[nodiscard]] int degree(Point p) const noexcept {
        assert(contains(p));
        const int horizontal = (p.x > 0) + (p.x + 1 < width_);
        const int vertical = (p.y > 0) + (p.y + 1 < height_);
        return horizontal + vertical;
    }

    /// Writes the neighbors of p into `out` (size >= kMaxDegree) and
    /// returns how many were written. Order: −x, +x, −y, +y (present ones).
    int neighbors(Point p, std::span<Point, kMaxDegree> out) const noexcept {
        assert(contains(p));
        int count = 0;
        if (p.x > 0) out[static_cast<std::size_t>(count++)] = Point{static_cast<Coord>(p.x - 1), p.y};
        if (p.x + 1 < width_) out[static_cast<std::size_t>(count++)] = Point{static_cast<Coord>(p.x + 1), p.y};
        if (p.y > 0) out[static_cast<std::size_t>(count++)] = Point{p.x, static_cast<Coord>(p.y - 1)};
        if (p.y + 1 < height_) out[static_cast<std::size_t>(count++)] = Point{p.x, static_cast<Coord>(p.y + 1)};
        return count;
    }

    /// True for the 4 corner nodes (degree 2).
    [[nodiscard]] bool is_corner(Point p) const noexcept { return degree(p) == 2; }

    /// True for non-corner boundary nodes (degree 3).
    [[nodiscard]] bool is_edge(Point p) const noexcept { return degree(p) == 3; }

    /// True for interior nodes (degree 4).
    [[nodiscard]] bool is_interior(Point p) const noexcept { return degree(p) == 4; }

    /// Clamps an arbitrary lattice point to the nearest grid node.
    [[nodiscard]] Point clamp(Point p) const noexcept {
        const Coord x = p.x < 0 ? 0 : (p.x >= width_ ? static_cast<Coord>(width_ - 1) : p.x);
        const Coord y = p.y < 0 ? 0 : (p.y >= height_ ? static_cast<Coord>(height_ - 1) : p.y);
        return Point{x, y};
    }

    /// Central node (ties broken toward the origin).
    [[nodiscard]] Point center() const noexcept {
        return Point{static_cast<Coord>((width_ - 1) / 2), static_cast<Coord>((height_ - 1) / 2)};
    }

    friend bool operator==(const Grid2D&, const Grid2D&) noexcept = default;

private:
    Coord width_;
    Coord height_;
};

/// Bounded grid with wrap-around (torus) neighborhoods. Not the paper's
/// domain — provided as an ablation to show boundary effects do not drive
/// the results (the paper argues this via the reflection principle).
class Torus2D {
public:
    static constexpr int kMaxDegree = 4;

    Torus2D(Coord width, Coord height)
        : width_{width}, height_{height} {
        if (width < 1 || height < 1) {
            throw std::invalid_argument("Torus2D: dimensions must be >= 1");
        }
    }

    static Torus2D square(Coord side) { return Torus2D{side, side}; }

    [[nodiscard]] Coord width() const noexcept { return width_; }
    [[nodiscard]] Coord height() const noexcept { return height_; }
    [[nodiscard]] std::int64_t size() const noexcept {
        return std::int64_t{width_} * height_;
    }

    [[nodiscard]] bool contains(Point p) const noexcept {
        return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
    }

    [[nodiscard]] NodeId node_id(Point p) const noexcept {
        assert(contains(p));
        return std::int64_t{p.y} * width_ + p.x;
    }

    [[nodiscard]] Point point_of(NodeId id) const noexcept {
        assert(id >= 0 && id < size());
        return Point{static_cast<Coord>(id % width_), static_cast<Coord>(id / width_)};
    }

    /// Every torus node has 4 neighbors (with multiplicity collapsed on
    /// degenerate 1-wide tori).
    [[nodiscard]] int degree(Point) const noexcept { return 4; }

    int neighbors(Point p, std::span<Point, kMaxDegree> out) const noexcept {
        assert(contains(p));
        const Coord xm = p.x == 0 ? static_cast<Coord>(width_ - 1) : static_cast<Coord>(p.x - 1);
        const Coord xp = p.x + 1 == width_ ? 0 : static_cast<Coord>(p.x + 1);
        const Coord ym = p.y == 0 ? static_cast<Coord>(height_ - 1) : static_cast<Coord>(p.y - 1);
        const Coord yp = p.y + 1 == height_ ? 0 : static_cast<Coord>(p.y + 1);
        out[0] = Point{xm, p.y};
        out[1] = Point{xp, p.y};
        out[2] = Point{p.x, ym};
        out[3] = Point{p.x, yp};
        return 4;
    }

    /// Wrap-aware Manhattan distance on the torus.
    [[nodiscard]] std::int64_t wrapped_manhattan(Point a, Point b) const noexcept {
        std::int64_t dx = std::abs(std::int64_t{a.x} - b.x);
        std::int64_t dy = std::abs(std::int64_t{a.y} - b.y);
        dx = std::min(dx, width_ - dx);
        dy = std::min(dy, height_ - dy);
        return dx + dy;
    }

    friend bool operator==(const Torus2D&, const Torus2D&) noexcept = default;

private:
    Coord width_;
    Coord height_;
};

}  // namespace smn::grid
