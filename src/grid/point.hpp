// point.hpp — integer lattice points and the distance metrics of the paper.
//
// The paper (footnote 2) measures all distances with the *Manhattan* (L1)
// metric; that is the default throughout libsmn. Chebyshev (L∞) and squared
// Euclidean are provided for ablation studies and for the spatial index.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <ostream>

namespace smn::grid {

/// Signed grid coordinate. 32 bits comfortably covers grids up to 2^31 per
/// side; node counts are handled as 64-bit.
using Coord = std::int32_t;

/// A point on the 2-D integer lattice.
struct Point {
    Coord x{0};
    Coord y{0};

    friend constexpr bool operator==(Point, Point) noexcept = default;
    friend constexpr auto operator<=>(Point, Point) noexcept = default;
};

inline std::ostream& operator<<(std::ostream& os, Point p) {
    return os << '(' << p.x << ',' << p.y << ')';
}

/// Distance metric selector.
enum class Metric : std::uint8_t {
    kManhattan,  ///< L1, the paper's metric (footnote 2)
    kChebyshev,  ///< L∞
    kEuclidean,  ///< L2 (comparisons done on squared values)
};

/// L1 distance ||u − v||₁, the paper's ||·||.
[[nodiscard]] constexpr std::int64_t manhattan(Point a, Point b) noexcept {
    const std::int64_t dx = std::int64_t{a.x} - b.x;
    const std::int64_t dy = std::int64_t{a.y} - b.y;
    return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

/// L∞ distance.
[[nodiscard]] constexpr std::int64_t chebyshev(Point a, Point b) noexcept {
    const std::int64_t dx = std::int64_t{a.x} - b.x;
    const std::int64_t dy = std::int64_t{a.y} - b.y;
    const std::int64_t ax = dx < 0 ? -dx : dx;
    const std::int64_t ay = dy < 0 ? -dy : dy;
    return ax > ay ? ax : ay;
}

/// Squared L2 distance (avoids sqrt; exact in integers).
[[nodiscard]] constexpr std::int64_t euclidean_sq(Point a, Point b) noexcept {
    const std::int64_t dx = std::int64_t{a.x} - b.x;
    const std::int64_t dy = std::int64_t{a.y} - b.y;
    return dx * dx + dy * dy;
}

/// True iff `a` and `b` are within distance `r` under `metric`.
/// For Euclidean the comparison is r² vs squared distance, exact.
[[nodiscard]] constexpr bool within(Point a, Point b, std::int64_t r, Metric metric) noexcept {
    switch (metric) {
        case Metric::kManhattan: return manhattan(a, b) <= r;
        case Metric::kChebyshev: return chebyshev(a, b) <= r;
        case Metric::kEuclidean: return euclidean_sq(a, b) <= r * r;
    }
    return false;  // unreachable
}

/// Distance under the selected metric (Euclidean returns floor of the true
/// distance; use `within` for exact radius tests).
[[nodiscard]] inline std::int64_t distance(Point a, Point b, Metric metric) noexcept {
    switch (metric) {
        case Metric::kManhattan: return manhattan(a, b);
        case Metric::kChebyshev: return chebyshev(a, b);
        case Metric::kEuclidean:
            return static_cast<std::int64_t>(std::sqrt(static_cast<double>(euclidean_sq(a, b))));
    }
    return 0;  // unreachable
}

[[nodiscard]] constexpr const char* metric_name(Metric metric) noexcept {
    switch (metric) {
        case Metric::kManhattan: return "manhattan";
        case Metric::kChebyshev: return "chebyshev";
        case Metric::kEuclidean: return "euclidean";
    }
    return "?";
}

}  // namespace smn::grid
