#include "grid/grid.hpp"

#include <cmath>

namespace smn::grid {

Grid2D Grid2D::with_at_least(std::int64_t n) {
    if (n < 1) throw std::invalid_argument("Grid2D::with_at_least: n must be >= 1");
    auto side = static_cast<Coord>(std::ceil(std::sqrt(static_cast<double>(n))));
    // Guard against floating-point under-estimation for huge n.
    while (std::int64_t{side} * side < n) ++side;
    return Grid2D::square(side);
}

}  // namespace smn::grid
