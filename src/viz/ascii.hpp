// ascii.hpp — terminal snapshots of the system state.
//
// Renders the grid as character art for demos and debugging: informed
// agents '*', uninformed agents 'o', empty nodes '.', blocked nodes '#'
// (obstacle domains), with co-located groups shown as their count (2–9,
// '+' beyond). Grids wider than `max_cols` are downsampled by square
// blocks (a block shows the "most interesting" content among its nodes:
// informed > uninformed > blocked > empty).
//
// Used by `quickstart --viz`; deliberately header-only and dependency-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "grid/obstacle_grid.hpp"
#include "grid/point.hpp"

namespace smn::viz {

/// Cell states ranked by display priority (higher wins within a block).
enum class Glyph : std::uint8_t { kEmpty = 0, kBlocked, kUninformed, kInformed };

namespace detail {

inline char glyph_char(Glyph g, int count) {
    switch (g) {
        case Glyph::kEmpty: return '.';
        case Glyph::kBlocked: return '#';
        case Glyph::kUninformed: return count > 1 ? (count <= 9 ? static_cast<char>('0' + count) : '+') : 'o';
        case Glyph::kInformed: return count > 1 ? (count <= 9 ? static_cast<char>('0' + count) : '+') : '*';
    }
    return '?';
}

}  // namespace detail

/// Renders agent positions (and optional informed flags / blocked mask)
/// into a multi-line string. `informed` may be empty (all agents drawn as
/// uninformed). `blocked_probe(p)` returns true for wall nodes.
template <typename BlockedFn>
std::string render(grid::Coord width, grid::Coord height, std::span<const grid::Point> positions,
                   std::span<const std::uint8_t> informed, BlockedFn&& blocked_probe,
                   int max_cols = 64) {
    const int block = std::max(1, (width + max_cols - 1) / max_cols);
    const int cols = (width + block - 1) / block;
    const int rows = (height + block - 1) / block;

    std::vector<Glyph> best(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows),
                            Glyph::kEmpty);
    std::vector<int> count(best.size(), 0);

    const auto cell_index = [&](grid::Point p) {
        return static_cast<std::size_t>(p.y / block) * static_cast<std::size_t>(cols) +
               static_cast<std::size_t>(p.x / block);
    };

    // Blocked nodes first (lowest priority above empty).
    for (grid::Coord y = 0; y < height; ++y) {
        for (grid::Coord x = 0; x < width; ++x) {
            if (blocked_probe(grid::Point{x, y})) {
                auto& g = best[cell_index({x, y})];
                g = std::max(g, Glyph::kBlocked);
            }
        }
    }
    // Agents.
    for (std::size_t a = 0; a < positions.size(); ++a) {
        const auto idx = cell_index(positions[a]);
        const bool is_informed = a < informed.size() && informed[a] != 0;
        best[idx] = std::max(best[idx], is_informed ? Glyph::kInformed : Glyph::kUninformed);
        ++count[idx];
    }

    std::string out;
    out.reserve(static_cast<std::size_t>(rows) * (static_cast<std::size_t>(cols) + 1));
    // Render top row last so y grows upward (math convention).
    for (int row = rows - 1; row >= 0; --row) {
        for (int col = 0; col < cols; ++col) {
            const auto idx =
                static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(col);
            out.push_back(detail::glyph_char(best[idx], count[idx]));
        }
        out.push_back('\n');
    }
    return out;
}

/// Convenience overloads for the two grid types.
inline std::string render(const grid::Grid2D& grid, std::span<const grid::Point> positions,
                          std::span<const std::uint8_t> informed = {}, int max_cols = 64) {
    return render(grid.width(), grid.height(), positions, informed,
                  [](grid::Point) { return false; }, max_cols);
}

inline std::string render(const grid::ObstacleGrid& domain,
                          std::span<const grid::Point> positions,
                          std::span<const std::uint8_t> informed = {}, int max_cols = 64) {
    return render(domain.width(), domain.height(), positions, informed,
                  [&](grid::Point p) { return domain.is_blocked(p); }, max_cols);
}

}  // namespace smn::viz
