# Lint.cmake — the `lint` convenience target and compile-commands export.
#
# `cmake --build build --target lint` runs the whole static-analysis
# gate (tools/lint/smn_lint.py: layering, determinism, header
# self-sufficiency, scripts, and clang-tidy-vs-baseline when clang-tidy
# is installed) against this build tree's compile_commands.json. The
# same invocation runs in the CI `lint` job with --require-tidy; see
# docs/static_analysis.md.

# clang-tidy and the header pass both want the exact per-TU flags.
set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

find_package(Python3 COMPONENTS Interpreter)
if(Python3_FOUND)
  add_custom_target(lint
    COMMAND Python3::Interpreter ${PROJECT_SOURCE_DIR}/tools/lint/smn_lint.py
            --root ${PROJECT_SOURCE_DIR} --build-dir ${CMAKE_BINARY_DIR}
    WORKING_DIRECTORY ${PROJECT_SOURCE_DIR}
    COMMENT "smn-lint: layering + determinism + headers + scripts + clang-tidy baseline"
    VERBATIM USES_TERMINAL)
else()
  message(STATUS "smn: python3 not found; `lint` target not available")
endif()
