# Warning flags shared by every smn target.
#
# SMN_WERROR turns warnings into errors. It is opt-in everywhere for now:
# the tree is -Wall -Wextra clean under gcc 12, but CI compilers have not
# been verified, so flipping it on in ci.yml should follow a green run there.

add_library(smn_warnings INTERFACE)
add_library(smn::warnings ALIAS smn_warnings)

target_compile_options(smn_warnings INTERFACE -Wall -Wextra)
if(SMN_WERROR)
  target_compile_options(smn_warnings INTERFACE -Werror)
endif()
