# Sanitizer instrumentation.
#
# SMN_SANITIZE enables AddressSanitizer + UndefinedBehaviorSanitizer
# tree-wide (the `asan` preset); SMN_SANITIZE_THREAD enables
# ThreadSanitizer (the `tsan` preset — guards the WorkerPool /
# ReplicationPool / sharded-scan concurrency). Compile and link flags must
# match across every object, so both apply globally rather than
# per-target. TSan is incompatible with ASan, so the two are mutually
# exclusive.

if(SMN_SANITIZE AND SMN_SANITIZE_THREAD)
  message(FATAL_ERROR "SMN_SANITIZE and SMN_SANITIZE_THREAD are mutually exclusive")
endif()

if(SMN_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  add_link_options(-fsanitize=address,undefined)
endif()

if(SMN_SANITIZE_THREAD)
  add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
  add_link_options(-fsanitize=thread)
endif()
