# AddressSanitizer + UndefinedBehaviorSanitizer instrumentation.
#
# Enabled tree-wide by SMN_SANITIZE (the `asan` preset); compile and link
# flags must match across every object, so this applies globally rather
# than per-target.

if(SMN_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  add_link_options(-fsanitize=address,undefined)
endif()
