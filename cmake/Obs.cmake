# Configure-time switches and build provenance for src/obs (telemetry).
#
# Every smn target compiles against the interface library smn::obs_flags so
# the whole build agrees on ONE telemetry configuration — mixing units with
# and without SMN_DISABLE_OBS would change which tallies a header-inlined
# hot loop performs depending on who compiled it (an ODR hazard, like
# mixing SIMD backends).
#
#  * -DSMN_DISABLE_OBS=ON — compile every SMN_TALLY / SMN_OBS_* increment
#    out of the hot paths. The obs classes (Registry, StepTrace, …) stay
#    available so instrumented programs still build; they just count
#    nothing. CI builds this leg to prove the compile-out path stays green.
#  * Provenance macros — git sha, build type and the Simd.cmake backend
#    name are baked in as string defines so smn_lab can emit a run
#    provenance record (obs/provenance.hpp). Include after Simd.cmake:
#    SMN_SIMD_BACKEND must already be set.

option(SMN_DISABLE_OBS "Compile out the telemetry counters and tallies" OFF)

add_library(smn_obs_flags INTERFACE)
add_library(smn::obs_flags ALIAS smn_obs_flags)

if(SMN_DISABLE_OBS)
  target_compile_definitions(smn_obs_flags INTERFACE SMN_DISABLE_OBS=1)
endif()

execute_process(
  COMMAND git rev-parse --short=12 HEAD
  WORKING_DIRECTORY ${PROJECT_SOURCE_DIR}
  OUTPUT_VARIABLE SMN_GIT_SHA
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET
  RESULT_VARIABLE smn_git_sha_rc)
if(NOT smn_git_sha_rc EQUAL 0 OR SMN_GIT_SHA STREQUAL "")
  set(SMN_GIT_SHA "unknown")
endif()

set(smn_build_type "${CMAKE_BUILD_TYPE}")
if(smn_build_type STREQUAL "")
  set(smn_build_type "unspecified")
endif()

target_compile_definitions(smn_obs_flags INTERFACE
  SMN_GIT_SHA="${SMN_GIT_SHA}"
  SMN_BUILD_TYPE="${smn_build_type}"
  SMN_SIMD_BACKEND_NAME="${SMN_SIMD_BACKEND}")

if(SMN_DISABLE_OBS)
  message(STATUS "smn: telemetry compiled out (SMN_DISABLE_OBS); git ${SMN_GIT_SHA}")
else()
  message(STATUS "smn: telemetry enabled; git ${SMN_GIT_SHA}")
endif()
