# Configure-time switch for src/util/failpoint.hpp (fault injection).
#
# Every smn target compiles against the interface library
# smn::failpoint_flags so the whole build agrees on ONE fault-injection
# configuration — mixing units with and without SMN_DISABLE_FAILPOINTS
# would change which sites a header-inlined path evaluates depending on
# who compiled it (the same ODR hazard Obs.cmake guards against).
#
#  * -DSMN_DISABLE_FAILPOINTS=ON — compile every util::failpoint() /
#    util::failpoint_fires() site down to a constant no-op. The default
#    (OFF) build keeps the sites compiled in but dormant: with no
#    SMN_FAILPOINTS environment spec they cost one inline nullptr check,
#    and CI proves trajectories stay bit-identical either way.

option(SMN_DISABLE_FAILPOINTS "Compile out the fault-injection sites" OFF)

add_library(smn_failpoint_flags INTERFACE)
add_library(smn::failpoint_flags ALIAS smn_failpoint_flags)

if(SMN_DISABLE_FAILPOINTS)
  target_compile_definitions(smn_failpoint_flags INTERFACE SMN_DISABLE_FAILPOINTS=1)
  message(STATUS "smn: fault-injection sites compiled out (SMN_DISABLE_FAILPOINTS)")
endif()
