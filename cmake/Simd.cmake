# Configure-time SIMD backend selection for src/util/simd.hpp.
#
# Every smn target (library modules, tests, benches, tools) compiles against
# the interface library smn::simd so the whole build uses ONE instruction
# set — mixing ISAs across translation units that include the same inline
# kernels would be an ODR violation waiting to happen.
#
# Backends (see src/util/simd.hpp for the kernel-facing contract):
#  * -DSMN_DISABLE_SIMD=ON  — force the scalar backend everywhere. This is
#    the CI force-scalar leg; determinism tests compare its goldens against
#    the vectorized build's.
#  * x86-64 where the compiler accepts -mavx2 — AVX2. Note this makes the
#    binaries require an AVX2-capable host (any x86-64-v3 machine, i.e.
#    Haswell 2013 onward); pass SMN_DISABLE_SIMD=ON to build for older CPUs.
#  * AArch64 — NEON, no extra flags needed (baseline on arm64).
#  * anything else — scalar.

include(CheckCXXSourceCompiles)

option(SMN_DISABLE_SIMD "Force the scalar kernel backend (no AVX2/NEON)" OFF)

add_library(smn_simd INTERFACE)
add_library(smn::simd ALIAS smn_simd)

if(SMN_DISABLE_SIMD)
  target_compile_definitions(smn_simd INTERFACE SMN_DISABLE_SIMD=1)
  set(SMN_SIMD_BACKEND "scalar (forced by SMN_DISABLE_SIMD)")
elseif(CMAKE_SYSTEM_PROCESSOR MATCHES "^(x86_64|amd64|AMD64)$")
  set(CMAKE_REQUIRED_FLAGS "-mavx2")
  check_cxx_source_compiles("
    #include <immintrin.h>
    int main() {
      __m256i v = _mm256_set1_epi32(1);
      v = _mm256_add_epi32(v, v);
      return _mm256_extract_epi32(v, 0) - 2;
    }" SMN_HAVE_AVX2)
  unset(CMAKE_REQUIRED_FLAGS)
  if(SMN_HAVE_AVX2)
    target_compile_options(smn_simd INTERFACE -mavx2)
    set(SMN_SIMD_BACKEND "avx2")
  else()
    set(SMN_SIMD_BACKEND "scalar (no AVX2 compiler support)")
  endif()
elseif(CMAKE_SYSTEM_PROCESSOR MATCHES "^(aarch64|arm64)$")
  set(SMN_SIMD_BACKEND "neon")
else()
  set(SMN_SIMD_BACKEND "scalar (unrecognized architecture)")
endif()

message(STATUS "smn: SIMD backend: ${SMN_SIMD_BACKEND}")
